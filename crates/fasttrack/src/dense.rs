//! Dense slot-indexed storage for per-thread and per-lock vector clocks.
//!
//! Thread and lock identities in the simulated workloads are small dense
//! integers, so the detector keys its clock state by direct index instead of
//! hashing a `ThreadId`/`LockId` on every event. Pathologically large ids
//! (possible through the public API) spill into a small scanned vector so
//! the dense array can never be grown unboundedly by a hostile key.
//!
//! This is deliberately not `aikido_types::ChunkMap`: the clock lookup sits
//! on the per-event critical path and the keys here are guaranteed-dense
//! slots, so a single direct index beats the chunk map's probe-plus-leaf
//! walk.

/// Keys below this bound index the dense array directly.
const MAX_DENSE: u64 = 1 << 16;

/// A `u64 → V` map optimised for small dense keys.
#[derive(Debug, Clone)]
pub(crate) struct DenseMap<V> {
    dense: Vec<Option<V>>,
    spill: Vec<(u64, V)>,
    len: usize,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap {
            dense: Vec::new(),
            spill: Vec::new(),
            len: 0,
        }
    }
}

impl<V> DenseMap<V> {
    /// Number of keys with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Shared access to the value at `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if key < MAX_DENSE {
            self.dense.get(key as usize)?.as_ref()
        } else {
            self.spill.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
        }
    }

    /// Mutable access to the value at `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if key < MAX_DENSE {
            self.dense.get_mut(key as usize)?.as_mut()
        } else {
            self.spill
                .iter_mut()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v)
        }
    }

    /// Mutable access to the value at `key`, inserting `make()` first if the
    /// key is vacant.
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        if key < MAX_DENSE {
            let idx = key as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, || None);
            }
            let slot = &mut self.dense[idx];
            if slot.is_none() {
                *slot = Some(make());
                self.len += 1;
            }
            slot.as_mut().expect("just filled")
        } else {
            if let Some(pos) = self.spill.iter().position(|(k, _)| *k == key) {
                return &mut self.spill[pos].1;
            }
            self.spill.push((key, make()));
            self.len += 1;
            &mut self.spill.last_mut().expect("just pushed").1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_spill_keys_roundtrip() {
        let mut m: DenseMap<u32> = DenseMap::default();
        *m.get_or_insert_with(3, || 30) += 0;
        *m.get_or_insert_with(1 << 40, || 40) += 0;
        assert_eq!(m.get(3), Some(&30));
        assert_eq!(m.get(1 << 40), Some(&40));
        assert_eq!(m.get(4), None);
        assert_eq!(m.len(), 2);
        *m.get_mut(3).unwrap() += 1;
        assert_eq!(m.get(3), Some(&31));
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let mut m: DenseMap<u32> = DenseMap::default();
        assert_eq!(*m.get_or_insert_with(7, || 1), 1);
        *m.get_or_insert_with(7, || 99) += 1;
        assert_eq!(m.get(7), Some(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(*m.get_or_insert_with(1 << 20, || 5), 5);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwriting_through_get_mut_does_not_grow_len() {
        let mut m: DenseMap<u32> = DenseMap::default();
        m.get_or_insert_with(2, || 1);
        *m.get_mut(2).unwrap() = 2;
        m.get_or_insert_with(1 << 30, || 3);
        *m.get_mut(1 << 30).unwrap() = 4;
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(2), Some(&2));
        assert_eq!(m.get(1 << 30), Some(&4));
    }
}

//! FastTrack — an efficient, precise happens-before data-race detector
//! (Flanagan & Freund, PLDI 2009), as used by the Aikido paper (§4).
//!
//! The detector computes a happens-before relation over the memory and
//! synchronisation operations of an execution using vector clocks, with
//! FastTrack's *epoch* optimisation: as long as accesses to a variable are
//! totally ordered, only the last access (a single `clock@thread` epoch) is
//! kept instead of a full vector clock, making the common case O(1).
//!
//! Differences from the Java original, exactly as in the Aikido paper (§4.2):
//!
//! * the detector operates on raw addresses rather than language-level
//!   variables, so the address space is divided into fixed-size 8-byte blocks
//!   that play the role of variables (this can introduce false positives for
//!   tightly packed data, and is configurable);
//! * metadata lives in shadow memory. The hot-path representation is one
//!   packed 64-bit word per block ([`aikido_types::ShadowWord`]: write epoch
//!   and exclusive-read epoch bit-packed side by side) in page-granular
//!   dense slabs ([`aikido_shadow::ShadowSlabs`]) whose directory is
//!   resolved once per run of same-page accesses; states that outgrow the
//!   word — promoted read-shared vector clocks, oversized clocks or thread
//!   ids — escape through a tag bit into a spilled side table. The enum-based
//!   [`aikido_shadow::ShadowStore`] representation is retained as the
//!   equivalence oracle behind [`FastTrack::with_packed_words`];
//! * thread creation is serialised by the harness, and thread/lock clock
//!   state is kept in dense slot-indexed arrays rather than hash tables.
//!
//! The detector implements [`aikido_types::SharedDataAnalysis`], so the same
//! instance can be driven by the conventional full-instrumentation pipeline
//! or by Aikido's sharing detector.
//!
//! # Examples
//!
//! Two unsynchronised writes to the same location from different threads are
//! a race; the same writes separated by a lock are not:
//!
//! ```
//! use aikido_fasttrack::FastTrack;
//! use aikido_types::{AccessKind, Addr, LockId, ThreadId};
//!
//! let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
//! let lock = LockId::new(1);
//! let addr = Addr::new(0x1000);
//!
//! // Racy: no synchronisation between the writes.
//! let mut ft = FastTrack::new();
//! ft.write(t0, addr);
//! ft.write(t1, addr);
//! assert_eq!(ft.races().len(), 1);
//!
//! // Race-free: both writes hold the same lock.
//! let mut ft = FastTrack::new();
//! ft.acquire(t0, lock);
//! ft.write(t0, addr);
//! ft.release(t0, lock);
//! ft.acquire(t1, lock);
//! ft.write(t1, addr);
//! ft.release(t1, lock);
//! assert!(ft.races().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod clock;
mod config;
mod dense;
mod detector;
mod packed;
mod state;
mod stats;

pub use clock::{Epoch, VectorClock};
pub use config::FastTrackConfig;
pub use detector::FastTrack;
pub use state::{ReadState, VarState};
pub use stats::{FastTrackStats, SpillStats};

//! Vector clocks and epochs.

use serde::{Deserialize, Serialize};
use std::fmt;

use aikido_types::ThreadId;

/// A scalar logical clock value.
pub type ClockValue = u32;

/// An *epoch*: a single `clock@thread` pair, FastTrack's compact
/// representation of a totally ordered access history.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epoch {
    clock: ClockValue,
    thread: ThreadId,
}

impl Epoch {
    /// The "never accessed" epoch: clock 0 of thread 0, which happens-before
    /// everything.
    pub const ZERO: Epoch = Epoch {
        clock: 0,
        thread: ThreadId::new(0),
    };

    /// Creates an epoch `clock@thread`.
    pub const fn new(clock: ClockValue, thread: ThreadId) -> Self {
        Epoch { clock, thread }
    }

    /// The clock component.
    pub const fn clock(self) -> ClockValue {
        self.clock
    }

    /// The thread component.
    pub const fn thread(self) -> ThreadId {
        self.thread
    }

    /// True if this epoch happens-before (or equals) the state captured in
    /// `vc`: `clock <= vc[thread]`.
    pub fn happens_before(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.thread)
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::ZERO
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.thread.raw())
    }
}

/// A vector clock: one logical clock per thread, indexed by
/// [`ThreadId::index`]. Missing entries are implicitly zero.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    clocks: Vec<ClockValue>,
}

impl VectorClock {
    /// Creates an all-zero vector clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backing clock array, trailing zeros included — the exact
    /// representation the snapshot plane serializes.
    pub(crate) fn raw_clocks(&self) -> &[ClockValue] {
        &self.clocks
    }

    /// Rebuilds a clock from its exact backing array (snapshot restore).
    pub(crate) fn from_raw_clocks(clocks: Vec<ClockValue>) -> Self {
        VectorClock { clocks }
    }

    /// The clock of `thread` (zero if never set).
    pub fn get(&self, thread: ThreadId) -> ClockValue {
        self.clocks.get(thread.index()).copied().unwrap_or(0)
    }

    /// Sets the clock of `thread` to `value`.
    pub fn set(&mut self, thread: ThreadId, value: ClockValue) {
        let idx = thread.index();
        if idx >= self.clocks.len() {
            self.clocks.resize(idx + 1, 0);
        }
        self.clocks[idx] = value;
    }

    /// Increments the clock of `thread` by one and returns the new value.
    pub fn increment(&mut self, thread: ThreadId) -> ClockValue {
        let new = self.get(thread) + 1;
        self.set(thread, new);
        new
    }

    /// Overwrites `self` with `other`, reusing the existing allocation (the
    /// release hot path re-publishes a thread clock into a lock slot without
    /// allocating).
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.clocks.clone_from(&other.clocks);
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.clocks.len() > self.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &c) in other.clocks.iter().enumerate() {
            if c > self.clocks[i] {
                self.clocks[i] = c;
            }
        }
    }

    /// True if `self ⊑ other` (pointwise less-or-equal): every event known to
    /// `self` happens-before (or equals) the state of `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.clocks.get(i).copied().unwrap_or(0))
    }

    /// The epoch of `thread` in this clock: `self[thread]@thread`.
    pub fn epoch_of(&self, thread: ThreadId) -> Epoch {
        Epoch::new(self.get(thread), thread)
    }

    /// Number of threads with a non-zero entry.
    pub fn nonzero_entries(&self) -> usize {
        self.clocks.iter().filter(|&&c| c > 0).count()
    }

    /// Iterates over `(thread, clock)` pairs with non-zero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, ClockValue)> + '_ {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (ThreadId::new(i as u32), c))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<(ThreadId, ClockValue)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, ClockValue)>>(iter: I) -> Self {
        let mut vc = VectorClock::new();
        for (t, c) in iter {
            vc.set(t, c);
        }
        vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn get_of_unset_thread_is_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(t(3)), 0);
        assert_eq!(vc.nonzero_entries(), 0);
    }

    #[test]
    fn set_and_increment() {
        let mut vc = VectorClock::new();
        vc.set(t(2), 5);
        assert_eq!(vc.get(t(2)), 5);
        assert_eq!(vc.increment(t(2)), 6);
        assert_eq!(vc.increment(t(0)), 1);
        assert_eq!(vc.nonzero_entries(), 2);
    }

    #[test]
    fn join_is_pointwise_max() {
        let a: VectorClock = [(t(0), 3), (t(1), 1)].into_iter().collect();
        let b: VectorClock = [(t(1), 4), (t(2), 2)].into_iter().collect();
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.get(t(0)), 3);
        assert_eq!(j.get(t(1)), 4);
        assert_eq!(j.get(t(2)), 2);
        // Join is an upper bound of both.
        assert!(a.le(&j));
        assert!(b.le(&j));
    }

    #[test]
    fn le_is_a_partial_order() {
        let a: VectorClock = [(t(0), 1)].into_iter().collect();
        let b: VectorClock = [(t(0), 2), (t(1), 1)].into_iter().collect();
        let c: VectorClock = [(t(1), 3)].into_iter().collect();
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Incomparable clocks (concurrent states).
        assert!(!b.le(&c));
        assert!(!c.le(&b));
        // Reflexive.
        assert!(a.le(&a));
    }

    #[test]
    fn le_handles_different_lengths() {
        let short: VectorClock = [(t(0), 1)].into_iter().collect();
        let long: VectorClock = [(t(0), 1), (t(5), 7)].into_iter().collect();
        assert!(short.le(&long));
        assert!(!long.le(&short));
    }

    #[test]
    fn epoch_happens_before_checks_single_entry() {
        let vc: VectorClock = [(t(1), 5)].into_iter().collect();
        assert!(Epoch::new(5, t(1)).happens_before(&vc));
        assert!(Epoch::new(4, t(1)).happens_before(&vc));
        assert!(!Epoch::new(6, t(1)).happens_before(&vc));
        assert!(!Epoch::new(1, t(2)).happens_before(&vc));
        assert!(Epoch::ZERO.happens_before(&vc));
        assert!(Epoch::ZERO.happens_before(&VectorClock::new()));
    }

    #[test]
    fn epoch_of_extracts_thread_entry() {
        let vc: VectorClock = [(t(2), 9)].into_iter().collect();
        assert_eq!(vc.epoch_of(t(2)), Epoch::new(9, t(2)));
        assert_eq!(vc.epoch_of(t(0)), Epoch::new(0, t(0)));
    }

    #[test]
    fn display_formats() {
        let vc: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        assert_eq!(vc.to_string(), "<1,2>");
        assert_eq!(Epoch::new(3, t(1)).to_string(), "3@1");
    }
}

//! The FastTrack detector itself.

use std::collections::HashSet;

use aikido_shadow::ShadowStore;
use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{
    AccessContext, AccessKind, Addr, AnalysisReport, InstrId, LockId, ReportKind, ShadowWord,
    SharedDataAnalysis, SlabHandle, ThreadId, Vpn,
};

use crate::clock::{Epoch, VectorClock};
use crate::config::FastTrackConfig;
use crate::dense::DenseMap;
use crate::packed::{decode_word, encode_state, pack_epoch, PackedVars, INLINE_LANES};
use crate::state::{ReadState, VarState};
use crate::stats::{FastTrackStats, SpillStats};

/// Where per-variable metadata lives. The packed plane (the default) keeps
/// one bit-packed [`ShadowWord`] per block in page-granular dense slabs with
/// a spilled side table; the reference store keeps the full enum
/// representation and is retained as the equivalence oracle behind
/// [`FastTrack::with_packed_words`]. Both run the exact same update logic
/// ([`read_slow`]/[`write_slow`]) — they differ only in how states are
/// loaded and stored.
#[derive(Debug)]
enum VarStorage {
    /// Packed shadow words + spill side table (the hot-path default).
    Packed(PackedVars),
    /// The retained enum-based reference representation.
    Reference(ShadowStore<VarState>),
}

/// The FastTrack happens-before race detector.
///
/// See the crate-level documentation for the algorithm overview and an
/// example. The detector can be driven either directly
/// ([`FastTrack::read`], [`FastTrack::write`], [`FastTrack::acquire`], …) or
/// through the [`SharedDataAnalysis`] trait when plugged into the Aikido or
/// full-instrumentation pipelines.
#[derive(Debug)]
pub struct FastTrack {
    config: FastTrackConfig,
    /// Per-thread vector clocks, keyed by dense thread slot.
    threads: DenseMap<VectorClock>,
    /// Per-lock vector clocks, keyed by dense lock slot.
    locks: DenseMap<VectorClock>,
    /// Per-variable (8-byte block) metadata, in shadow memory.
    vars: VarStorage,
    /// Blocks for which a race has already been reported (deduplication).
    reported_blocks: HashSet<u64>,
    reports: Vec<AnalysisReport>,
    stats: FastTrackStats,
    /// Cycles attributable to the most recent read/write check (depends on
    /// the path taken; used by the simulator's cost model).
    last_cost: u64,
    /// Global sequence number of the access currently being processed.
    /// Incremented once per access at the storage entry points; a shard
    /// plane re-bases it per delivery ([`FastTrack::set_access_seq`]) so
    /// candidate reports from different replicas carry a total order.
    access_seq: u64,
    /// When true (shard replicas and the plane's canonical detector during
    /// a sharded run), race reports that survive deduplication are buffered
    /// as `(access_seq, report)` candidates instead of being pushed to
    /// `reports`; the merge applies them centrally in sequence order so the
    /// `max_reports` cap keeps its sequential semantics.
    candidate_mode: bool,
    /// Buffered candidate reports (candidate mode only).
    candidates: Vec<(u64, AnalysisReport)>,
}

/// Cycle costs of the different FastTrack code paths, used to report
/// [`SharedDataAnalysis::last_access_cost_cycles`]. Calibrated so that full
/// instrumentation of every access lands in the paper's tens-to-hundreds-of-x
/// slowdown band, with the vector-clock slow paths (which grow with thread
/// count) substantially more expensive than the epoch fast path.
pub(crate) mod cost {
    /// Same-epoch fast path (one comparison).
    pub const SAME_EPOCH: u64 = 30;
    /// Exclusive-epoch check and update.
    pub const EXCLUSIVE: u64 = 78;
    /// Promotion of a read history to a vector clock.
    pub const PROMOTE_SHARED: u64 = 160;
    /// Per-thread extra cost of any operation over a read-shared vector clock.
    pub const SHARED_PER_THREAD: u64 = 16;
    /// Base cost of an operation over a read-shared vector clock.
    pub const SHARED_BASE: u64 = 95;
    /// Extra cost of constructing and emitting a race report.
    pub const REPORT: u64 = 220;
}

/// True if the access hits FastTrack's same-epoch read fast path: the read
/// history already records this exact epoch. Shared storage-independent
/// logic — the packed word probe is proven equal to this for unspilled
/// states, and spilled states run it directly.
#[inline]
fn read_fast_path(state: &VarState, thread: ThreadId, epoch: Epoch) -> bool {
    match &state.read {
        ReadState::Exclusive(e) => *e == epoch,
        ReadState::Shared(rvc) => rvc.get(thread) == epoch.clock(),
    }
}

/// A thread epoch pre-positioned for every packed fast path: one probe for
/// the unspilled read lane, one for the spilled same-epoch hint, one for
/// the unspilled write lane and one for the spilled *owned*-write check —
/// each a single masked compare. Packed once per access (and, in
/// [`FastTrack::on_access_run`], hoisted once per run, so the ownership
/// check is batched along with everything else). `None` when the epoch
/// exceeds the packing budget — exactly when no packed word can match it.
#[derive(Copy, Clone)]
struct EpochProbes {
    read: u64,
    hint: u64,
    write: u64,
    owned: u64,
}

impl EpochProbes {
    #[inline]
    fn pack(epoch: Epoch) -> Option<EpochProbes> {
        pack_epoch(epoch).map(|field| EpochProbes {
            read: ShadowWord::read_probe(field),
            hint: ShadowWord::spill_hint_probe(field),
            write: ShadowWord::write_probe(field),
            owned: ShadowWord::owned_write_probe(field),
        })
    }
}

/// The same-epoch hint to leave in a spilled word after a slow access: the
/// epoch field whose read probe would now hit the fast path (0 = none). A
/// read just recorded `epoch` in the read history; a write always leaves an
/// exclusive read history behind, whose epoch answers repeat reads.
#[inline]
fn spill_hint_after(state: &VarState, read_epoch: Option<Epoch>) -> u64 {
    let epoch = match (read_epoch, &state.read) {
        (Some(epoch), _) => epoch,
        (None, ReadState::Exclusive(e)) => *e,
        (None, ReadState::Shared(_)) => return 0,
    };
    pack_epoch(epoch).unwrap_or(0)
}

/// The ownership-tagged word to install on a still-spilled block: `field`
/// is the same-epoch hint and the owner tag is set exactly when the hint
/// epoch equals the block's write epoch — the condition under which the
/// hint's thread *owns* the block and its repeat writes can be answered by
/// the word-level [`ShadowWord::matches_owned_write`] compare without
/// touching the arena (packing is injective, so comparing packed fields
/// compares the epochs).
#[inline]
fn ownership_word(word: ShadowWord, write: Epoch, field: u64) -> ShadowWord {
    let owned = field != 0 && pack_epoch(write) == Some(field);
    word.with_ownership(field, owned)
}

/// What the slow read path did to a variable's state; the caller applies the
/// statistics, cost and report. Produced by both [`read_slow`] and the spill
/// slot's in-place [`crate::packed::SpillSlot::read_update`].
pub(crate) struct ReadOutcome {
    pub(crate) cost: u64,
    pub(crate) promoted: bool,
    pub(crate) write_race: bool,
    pub(crate) prior_writer: ThreadId,
}

/// The read update: write-read race check plus read-history update, exactly
/// the logic both storage representations share.
#[inline]
fn read_slow(
    state: &mut VarState,
    vc: &VectorClock,
    thread: ThreadId,
    epoch: Epoch,
    use_epochs: bool,
    threads_known: u64,
) -> ReadOutcome {
    let mut cost = cost::EXCLUSIVE;
    let mut promoted = false;

    // Write-read race check: the last write must happen-before this read.
    let write_race = !state.write.happens_before(vc);
    let prior_writer = state.write.thread();

    // Update the read history.
    match (&mut state.read, use_epochs) {
        (ReadState::Exclusive(e), true) if e.happens_before(vc) => {
            *e = epoch;
        }
        (ReadState::Exclusive(e), _) => {
            // Concurrent (or epoch optimisation disabled): promote to a
            // vector clock.
            let mut rvc = VectorClock::new();
            if e.clock() > 0 {
                rvc.set(e.thread(), e.clock());
            }
            rvc.set(thread, epoch.clock());
            state.read = ReadState::Shared(Box::new(rvc));
            promoted = true;
            cost = cost::PROMOTE_SHARED;
        }
        (ReadState::Shared(rvc), _) => {
            rvc.set(thread, epoch.clock());
            cost = cost::SHARED_BASE + cost::SHARED_PER_THREAD * threads_known;
        }
    }

    ReadOutcome {
        cost,
        promoted,
        write_race,
        prior_writer,
    }
}

/// What the slow write path did to a variable's state. Produced by both
/// [`write_slow`] and [`crate::packed::SpillSlot::write_update`].
pub(crate) struct WriteOutcome {
    pub(crate) cost: u64,
    pub(crate) write_race: bool,
    pub(crate) prior_writer: ThreadId,
    pub(crate) read_race: bool,
    pub(crate) prior_reader: Option<ThreadId>,
}

/// The write update: write-write and read-write race checks plus the write
/// record and read-history collapse, shared by both storages.
#[inline]
fn write_slow(
    state: &mut VarState,
    vc: &VectorClock,
    epoch: Epoch,
    threads_known: u64,
) -> WriteOutcome {
    let cost = if state.read.is_shared() {
        cost::SHARED_BASE + cost::SHARED_PER_THREAD * threads_known
    } else {
        cost::EXCLUSIVE
    };
    let write_race = !state.write.happens_before(vc);
    let prior_writer = state.write.thread();
    let read_race = !state.read.happens_before(vc);
    let prior_reader = match &state.read {
        ReadState::Exclusive(e) => Some(e.thread()),
        ReadState::Shared(rvc) => rvc.iter().find(|(t, c)| *c > vc.get(*t)).map(|(t, _)| t),
    };

    // Update: record this write; once all concurrent reads have been
    // checked the read history can collapse back to the writer's epoch
    // (FastTrack's "write shared" rule).
    state.write = epoch;
    if state.read.is_shared() {
        state.read = ReadState::Exclusive(epoch);
    }

    WriteOutcome {
        cost,
        write_race,
        prior_writer,
        read_race,
        prior_reader,
    }
}

impl Default for FastTrack {
    fn default() -> Self {
        Self::new()
    }
}

impl FastTrack {
    /// Creates a detector with the default configuration (8-byte blocks,
    /// epoch optimisation enabled).
    pub fn new() -> Self {
        Self::with_config(FastTrackConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured granularity is not a power of two.
    pub fn with_config(config: FastTrackConfig) -> Self {
        FastTrack {
            vars: VarStorage::Packed(PackedVars::new(config.granularity)),
            config,
            threads: DenseMap::default(),
            locks: DenseMap::default(),
            reported_blocks: HashSet::new(),
            reports: Vec::new(),
            stats: FastTrackStats::new(),
            last_cost: 0,
            access_seq: 0,
            candidate_mode: false,
            candidates: Vec::new(),
        }
    }

    /// Selects between the packed shadow-word metadata plane (the default)
    /// and the enum-based reference store. The two are byte-identical by
    /// construction — same statistics, same costs, same races, same
    /// reconstructed states — mirroring the simulator's
    /// `with_batched_kernels` pattern: the reference path exists as the
    /// equivalence oracle the tests and the `shadow_words` benchmark compare
    /// against, not as a user-facing feature. Any metadata accumulated so
    /// far is converted losslessly.
    pub fn with_packed_words(mut self, packed: bool) -> Self {
        match (&self.vars, packed) {
            (VarStorage::Packed(_), true) | (VarStorage::Reference(_), false) => {}
            (VarStorage::Reference(store), true) => {
                let mut vars = PackedVars::new(self.config.granularity);
                let shift = self.config.granularity.trailing_zeros();
                for (addr, state) in store.iter() {
                    vars.insert_state(addr.raw() >> shift, state.clone());
                }
                self.vars = VarStorage::Packed(vars);
            }
            (VarStorage::Packed(vars), false) => {
                let mut store = ShadowStore::new(self.config.granularity);
                let shift = self.config.granularity.trailing_zeros();
                for (block, state) in vars.states() {
                    store.insert(Addr::new(block << shift), state);
                }
                self.vars = VarStorage::Reference(store);
            }
        }
        self
    }

    /// True if the detector runs on the packed metadata plane.
    pub fn packed_words(&self) -> bool {
        matches!(self.vars, VarStorage::Packed(_))
    }

    /// Number of blocks currently holding metadata, independent of the
    /// storage representation.
    pub fn tracked_blocks(&self) -> usize {
        match &self.vars {
            VarStorage::Packed(vars) => vars.len(),
            VarStorage::Reference(store) => store.len(),
        }
    }

    /// Every tracked `(block index, state)` pair in ascending block order,
    /// reconstructed from whichever storage is active. This is the
    /// serialization surface the packed-vs-reference equivalence oracle
    /// compares.
    pub fn var_states(&self) -> Vec<(u64, VarState)> {
        match &self.vars {
            VarStorage::Packed(vars) => vars.states(),
            VarStorage::Reference(store) => {
                let shift = self.config.granularity.trailing_zeros();
                store
                    .iter()
                    .map(|(addr, state)| (addr.raw() >> shift, state.clone()))
                    .collect()
            }
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &FastTrackConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &FastTrackStats {
        &self.stats
    }

    /// Spill/ownership counters of the packed plane's representation —
    /// zeros when the reference store is active (it has no arena). Unlike
    /// [`FastTrack::stats`], these are not part of the packed-vs-reference
    /// equivalence surface.
    pub fn spill_stats(&self) -> SpillStats {
        match &self.vars {
            VarStorage::Packed(vars) => vars.spill_stats(),
            VarStorage::Reference(_) => SpillStats::default(),
        }
    }

    /// All race reports recorded so far.
    pub fn races(&self) -> &[AnalysisReport] {
        &self.reports
    }

    /// Total races detected, including ones deduplicated out of the report
    /// list.
    pub fn races_detected(&self) -> u64 {
        self.stats.races_detected
    }

    /// The vector clock of `thread` (creating it on first use).
    fn thread_vc(&mut self, thread: ThreadId) -> &mut VectorClock {
        self.threads.get_or_insert_with(thread.index() as u64, || {
            let mut vc = VectorClock::new();
            vc.set(thread, 1);
            vc
        })
    }

    /// Ensures a thread exists and returns a snapshot of its vector clock.
    /// Only the (rare) synchronisation operations snapshot; the per-access
    /// paths borrow the clock in place.
    fn thread_vc_snapshot(&mut self, thread: ThreadId) -> VectorClock {
        self.thread_vc(thread).clone()
    }

    /// Processes a read of the block containing `addr` by `thread`.
    pub fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.read_at(thread, addr, None)
    }

    /// Processes a read, recording the static instruction for reports.
    pub fn read_at(&mut self, thread: ThreadId, addr: Addr, instr: Option<InstrId>) {
        self.stats.reads += 1;
        let threads_known = self.threads.len().max(1) as u64;
        let epoch = self.thread_vc(thread).epoch_of(thread);
        self.read_with_epoch(thread, addr, instr, epoch, threads_known);
    }

    /// The body of [`FastTrack::read_at`] with the per-access prolog (thread
    /// clock ensure + epoch extraction + known-thread count) hoisted out, so
    /// [`FastTrack::on_access_batch`] can snapshot it once per run. Reads and
    /// writes never create thread clocks or advance epochs, so the hoisted
    /// values stay exactly what the scalar path would recompute per access.
    #[inline]
    fn read_with_epoch(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        threads_known: u64,
    ) {
        match &mut self.vars {
            VarStorage::Reference(_) => {
                self.read_reference(thread, addr, instr, epoch, threads_known);
            }
            VarStorage::Packed(vars) => {
                let (handle, slot, _block) = vars.locate(addr);
                let probes = EpochProbes::pack(epoch);
                self.read_packed(
                    handle,
                    slot,
                    thread,
                    addr,
                    instr,
                    epoch,
                    probes,
                    threads_known,
                );
            }
        }
    }

    /// One read against the reference (enum) store.
    #[inline]
    fn read_reference(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        threads_known: u64,
    ) {
        self.access_seq += 1;
        let use_epochs = self.config.epoch_optimization;
        let VarStorage::Reference(store) = &mut self.vars else {
            unreachable!("caller matched the reference storage");
        };
        let (is_new, state) = store.get_or_default_tracked(addr);
        if is_new {
            self.stats.blocks_tracked += 1;
        }

        // Same-epoch fast path: decided on the epoch alone — the full thread
        // clock is only fetched on the slow path below.
        if use_epochs && read_fast_path(state, thread, epoch) {
            self.stats.read_same_epoch += 1;
            self.last_cost = cost::SAME_EPOCH;
            return;
        }

        // Field-disjoint borrows: the thread clock is read in place while the
        // variable state is updated — no per-access clone.
        let vc = self
            .threads
            .get(thread.index() as u64)
            .expect("caller ensured the thread clock");
        let out = read_slow(state, vc, thread, epoch, use_epochs, threads_known);
        self.apply_read_outcome(out, thread, addr, instr);
    }

    /// One read against the packed plane. `probes` carries the thread's
    /// epoch pre-positioned for both word lanes (`None` when the epoch
    /// exceeds the packing budget, in which case no packed word can match
    /// it — exactly when the reference fast path would miss too).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn read_packed(
        &mut self,
        handle: SlabHandle,
        slot: usize,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        probes: Option<EpochProbes>,
        threads_known: u64,
    ) {
        self.access_seq += 1;
        let use_epochs = self.config.epoch_optimization;
        let VarStorage::Packed(vars) = &mut self.vars else {
            unreachable!("caller matched the packed storage");
        };
        let word = vars.word_at(handle, slot);
        if word.is_empty() {
            self.stats.blocks_tracked += 1;
        }

        // Same-epoch fast path, decided on the packed word alone: one
        // masked compare covers "unspilled ∧ exclusive-read epoch equals
        // ours", a second covers "spilled ∧ same-epoch hint equals ours"
        // (owner tag excluded from the mask, so the hint answers whichever
        // thread it names) — either way the side arena is never touched.
        if use_epochs {
            if let Some(probes) = probes {
                if word.matches_read(probes.read) || word.matches_spill_hint(probes.hint) {
                    self.stats.read_same_epoch += 1;
                    self.last_cost = cost::SAME_EPOCH;
                    return;
                }
            }
        }

        if word.is_spilled() {
            // Full state in the side arena — one direct index, no second
            // probe. The fast path still applies even when the word hint
            // belongs to another thread: for the first INLINE_LANES threads
            // the slot's epoch lane answers it without chasing any vector
            // clock (the lane is exact — see `SpillSlot`).
            let entry = vars.spill_slot_mut(word);
            let fast = use_epochs
                && if thread.index() < INLINE_LANES {
                    entry.lane_clock(thread.index()) == epoch.clock()
                } else {
                    entry.read_fast_path(thread, epoch)
                };
            if fast {
                self.stats.read_same_epoch += 1;
                self.last_cost = cost::SAME_EPOCH;
                return;
            }
            let vc = self
                .threads
                .get(thread.index() as u64)
                .expect("caller ensured the thread clock");
            let was_boxed = entry.is_boxed();
            let out = entry.read_update(vc, thread, epoch, use_epochs, threads_known);
            let repacked = entry.repack();
            // Sticky ownership: when the word's hint belongs to another
            // thread whose fast path is *still* valid after this update
            // (its epoch lane still carries the hinted clock), keep it —
            // the owner's repeat reads stay on the one-compare word path
            // while we pay the arena hop, and the word store is skipped
            // entirely. Otherwise this thread claims the hint.
            let cur = word.spill_hint_field();
            let keep = repacked.is_none() && cur != 0 && {
                let owner = ShadowWord::field_thread(cur) as usize;
                owner != thread.index()
                    && owner < INLINE_LANES
                    && entry.lane_clock(owner) == ShadowWord::field_clock(cur)
            };
            let entry_write = entry.write_epoch();
            let now_boxed = entry.is_boxed();
            match repacked {
                Some(repacked) => {
                    // The state collapsed back into the word: un-spill.
                    vars.unspill(word);
                    vars.set_word_at(handle, slot, repacked);
                }
                None if keep => {
                    // Reads change neither the write epoch nor (when the
                    // keep check passes) the owner's lane, so the word —
                    // hint, owner tag and spill index — stays valid as-is.
                    vars.spill_stats_mut().ownership_keeps += 1;
                }
                None => {
                    // Still spilled: the read just recorded `epoch` in the
                    // read history, so it becomes the new same-epoch hint.
                    let field = pack_epoch(epoch).unwrap_or(0);
                    vars.spill_stats_mut().ownership_claims += 1;
                    vars.set_word_at(handle, slot, ownership_word(word, entry_write, field));
                }
            }
            if now_boxed && !was_boxed {
                vars.spill_stats_mut().boxed_overflows += 1;
            }
            if out.promoted && !now_boxed {
                vars.spill_stats_mut().inline_promotions += 1;
            }
            self.apply_read_outcome(out, thread, addr, instr);
        } else {
            let mut state = decode_word(word);
            let vc = self
                .threads
                .get(thread.index() as u64)
                .expect("caller ensured the thread clock");
            let out = read_slow(&mut state, vc, thread, epoch, use_epochs, threads_known);
            match encode_state(&state) {
                Some(word) => vars.set_word_at(handle, slot, word),
                None => {
                    let hint = spill_hint_after(&state, Some(epoch));
                    let write = state.write;
                    let marker = vars.spill(state);
                    if out.promoted && !vars.spill_slot(marker).is_boxed() {
                        vars.spill_stats_mut().inline_promotions += 1;
                    }
                    vars.set_word_at(handle, slot, ownership_word(marker, write, hint));
                }
            }
            self.apply_read_outcome(out, thread, addr, instr);
        }
    }

    /// Applies a slow read's outcome to the statistics, cost and reports.
    #[inline]
    fn apply_read_outcome(
        &mut self,
        out: ReadOutcome,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
    ) {
        self.last_cost = out.cost;
        if out.promoted {
            self.stats.read_share_promotions += 1;
        }
        if out.write_race {
            self.last_cost += cost::REPORT;
            self.report(
                thread,
                addr,
                AccessKind::Read,
                Some(out.prior_writer),
                instr,
                "read is concurrent with a prior write",
            );
        }
    }

    /// Processes a write of the block containing `addr` by `thread`.
    pub fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.write_at(thread, addr, None)
    }

    /// Processes a write, recording the static instruction for reports.
    pub fn write_at(&mut self, thread: ThreadId, addr: Addr, instr: Option<InstrId>) {
        self.stats.writes += 1;
        let threads_known = self.threads.len().max(1) as u64;
        let epoch = self.thread_vc(thread).epoch_of(thread);
        self.write_with_epoch(thread, addr, instr, epoch, threads_known);
    }

    /// The body of [`FastTrack::write_at`] with the per-access prolog hoisted
    /// out (see [`FastTrack::read_with_epoch`]).
    #[inline]
    fn write_with_epoch(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        threads_known: u64,
    ) {
        match &mut self.vars {
            VarStorage::Reference(_) => {
                self.write_reference(thread, addr, instr, epoch, threads_known);
            }
            VarStorage::Packed(vars) => {
                let (handle, slot, _block) = vars.locate(addr);
                let probes = EpochProbes::pack(epoch);
                self.write_packed(
                    handle,
                    slot,
                    thread,
                    addr,
                    instr,
                    epoch,
                    probes,
                    threads_known,
                );
            }
        }
    }

    /// One write against the reference (enum) store.
    #[inline]
    fn write_reference(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        threads_known: u64,
    ) {
        self.access_seq += 1;
        let use_epochs = self.config.epoch_optimization;
        let VarStorage::Reference(store) = &mut self.vars else {
            unreachable!("caller matched the reference storage");
        };
        let (is_new, state) = store.get_or_default_tracked(addr);
        if is_new {
            self.stats.blocks_tracked += 1;
        }

        // Same-epoch fast path.
        if use_epochs && state.write == epoch {
            self.stats.write_same_epoch += 1;
            self.last_cost = cost::SAME_EPOCH;
            return;
        }

        let vc = self
            .threads
            .get(thread.index() as u64)
            .expect("caller ensured the thread clock");
        let out = write_slow(state, vc, epoch, threads_known);
        self.apply_write_outcome(out, thread, addr, instr);
    }

    /// One write against the packed plane (see [`FastTrack::read_packed`]
    /// for the probe contract).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn write_packed(
        &mut self,
        handle: SlabHandle,
        slot: usize,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
        epoch: Epoch,
        probes: Option<EpochProbes>,
        threads_known: u64,
    ) {
        self.access_seq += 1;
        let use_epochs = self.config.epoch_optimization;
        let VarStorage::Packed(vars) = &mut self.vars else {
            unreachable!("caller matched the packed storage");
        };
        let word = vars.word_at(handle, slot);
        if word.is_empty() {
            self.stats.blocks_tracked += 1;
        }

        // Same-epoch fast path: one masked compare against the write lane,
        // plus the ownership-epoch compare for spilled blocks — a spilled
        // word whose owner tag is set carries a hint equal to the block's
        // write epoch, so the owner's repeat write is answered by the word
        // alone, never touching the arena.
        if use_epochs {
            if let Some(probes) = probes {
                if word.matches_write(probes.write) || word.matches_owned_write(probes.owned) {
                    self.stats.write_same_epoch += 1;
                    self.last_cost = cost::SAME_EPOCH;
                    return;
                }
            }
        }

        if word.is_spilled() {
            let entry = vars.spill_slot_mut(word);
            if use_epochs && entry.write_epoch() == epoch {
                self.stats.write_same_epoch += 1;
                self.last_cost = cost::SAME_EPOCH;
                return;
            }
            let vc = self
                .threads
                .get(thread.index() as u64)
                .expect("caller ensured the thread clock");
            let out = entry.write_update(vc, epoch, threads_known);
            let repacked = entry.repack();
            let hint_epoch = entry.exclusive_read_epoch();
            let entry_write = entry.write_epoch();
            match repacked {
                Some(repacked) => {
                    // A write collapses read-shared histories, so the state
                    // usually re-packs here — restoring the word fast path.
                    vars.unspill(word);
                    vars.set_word_at(handle, slot, repacked);
                }
                None => {
                    // Still spilled (an oversized epoch keeps the state in
                    // the arena): the stale hint, owner tag and lanes must
                    // not survive the rewritten read history.
                    let field = hint_epoch.and_then(pack_epoch).unwrap_or(0);
                    vars.set_word_at(handle, slot, ownership_word(word, entry_write, field));
                }
            }
            self.apply_write_outcome(out, thread, addr, instr);
        } else {
            let mut state = decode_word(word);
            let vc = self
                .threads
                .get(thread.index() as u64)
                .expect("caller ensured the thread clock");
            let out = write_slow(&mut state, vc, epoch, threads_known);
            match encode_state(&state) {
                Some(word) => vars.set_word_at(handle, slot, word),
                None => {
                    let hint = spill_hint_after(&state, None);
                    let write = state.write;
                    let marker = vars.spill(state);
                    vars.set_word_at(handle, slot, ownership_word(marker, write, hint));
                }
            }
            self.apply_write_outcome(out, thread, addr, instr);
        }
    }

    /// Applies a slow write's outcome to the statistics, cost and reports.
    #[inline]
    fn apply_write_outcome(
        &mut self,
        out: WriteOutcome,
        thread: ThreadId,
        addr: Addr,
        instr: Option<InstrId>,
    ) {
        self.last_cost = out.cost;
        if out.write_race {
            self.last_cost += cost::REPORT;
            self.report(
                thread,
                addr,
                AccessKind::Write,
                Some(out.prior_writer),
                instr,
                "write is concurrent with a prior write",
            );
        } else if out.read_race {
            self.last_cost += cost::REPORT;
            self.report(
                thread,
                addr,
                AccessKind::Write,
                out.prior_reader,
                instr,
                "write is concurrent with a prior read",
            );
        }
    }

    /// Processes `thread` acquiring `lock`.
    pub fn acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.stats.acquires += 1;
        self.thread_vc(thread);
        let tvc = self
            .threads
            .get_mut(thread.index() as u64)
            .expect("just ensured");
        if let Some(lvc) = self.locks.get(lock.raw()) {
            tvc.join(lvc);
        }
    }

    /// Processes `thread` releasing `lock`.
    pub fn release(&mut self, thread: ThreadId, lock: LockId) {
        self.stats.releases += 1;
        self.thread_vc(thread);
        let tvc = self
            .threads
            .get(thread.index() as u64)
            .expect("just ensured");
        self.locks
            .get_or_insert_with(lock.raw(), VectorClock::new)
            .copy_from(tvc);
        self.thread_vc(thread).increment(thread);
    }

    /// Processes `parent` spawning `child`: the child inherits the parent's
    /// history.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.stats.forks += 1;
        let pvc = self.thread_vc_snapshot(parent);
        let cvc = self.thread_vc(child);
        cvc.join(&pvc);
        let child_clock = cvc.get(child).max(1);
        cvc.set(child, child_clock);
        self.thread_vc(parent).increment(parent);
    }

    /// Processes `parent` joining `child`: the parent inherits the child's
    /// history.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        self.stats.joins += 1;
        let cvc = self.thread_vc_snapshot(child);
        self.thread_vc(parent).join(&cvc);
        self.thread_vc(child).increment(child);
    }

    /// Processes a barrier joining all `threads`: everyone's history is
    /// merged and every participant starts a new epoch.
    pub fn barrier(&mut self, threads: &[ThreadId]) {
        self.stats.barriers += 1;
        let mut merged = VectorClock::new();
        for &t in threads {
            let vc = self.thread_vc_snapshot(t);
            merged.join(&vc);
        }
        for &t in threads {
            let vc = self.thread_vc(t);
            vc.join(&merged);
            vc.increment(t);
        }
    }

    fn report(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        kind: AccessKind,
        other_thread: Option<ThreadId>,
        instr: Option<InstrId>,
        message: &str,
    ) {
        self.stats.races_detected += 1;
        let block = addr.raw() / self.config.granularity;
        if self.config.dedup_by_block && !self.reported_blocks.insert(block) {
            return;
        }
        if self.candidate_mode {
            // Buffer the surviving report for the shard plane's central,
            // sequence-ordered apply; the `max_reports` cap is global and
            // order-dependent, so it is enforced there, not here.
            let report = AnalysisReport {
                kind: ReportKind::DataRace,
                addr: Addr::new(block * self.config.granularity),
                thread,
                other_thread,
                instr,
                message: format!("{kind}: {message}"),
            };
            self.candidates.push((self.access_seq, report));
            return;
        }
        if self.reports.len() >= self.config.max_reports {
            return;
        }
        self.reports.push(AnalysisReport {
            kind: ReportKind::DataRace,
            addr: Addr::new(block * self.config.granularity),
            thread,
            other_thread,
            instr,
            message: format!("{kind}: {message}"),
        });
    }

    // ---- shard-plane support ---------------------------------------------
    //
    // The simulator's sharded parallel analysis runs one replica detector
    // per worker shard plus a canonical detector on the commit thread. Each
    // replica replays the full synchronisation stream (accesses never
    // mutate thread or lock clocks, so every replica's clock plane stays
    // identical to the sequential detector's) and analyses only the pages
    // its shard owns. These methods are the merge surface: they move
    // variable states, dedup entries, buffered race candidates and counters
    // between replicas without perturbing any statistic or report.

    /// Switches candidate mode on or off. In candidate mode, race reports
    /// that survive block deduplication are buffered with their access
    /// sequence number ([`FastTrack::take_candidates`]) instead of being
    /// appended to the report list; the shard plane applies them centrally
    /// in global sequence order so the `max_reports` cap keeps the exact
    /// semantics of a sequential run.
    pub fn set_candidate_mode(&mut self, on: bool) {
        self.candidate_mode = on;
    }

    /// Re-bases the access sequence counter before a replica processes a
    /// queued delivery, so candidates from different replicas order
    /// globally. The counter advances by exactly one per access.
    pub fn set_access_seq(&mut self, seq: u64) {
        self.access_seq = seq;
    }

    /// Drains the candidate reports buffered in candidate mode, as
    /// `(access sequence, report)` pairs in local processing order.
    pub fn take_candidates(&mut self) -> Vec<(u64, AnalysisReport)> {
        std::mem::take(&mut self.candidates)
    }

    /// Appends a candidate report that already survived deduplication on
    /// its replica, enforcing only the global `max_reports` cap. The shard
    /// plane calls this on the canonical detector in ascending sequence
    /// order.
    pub fn admit_candidate(&mut self, report: AnalysisReport) {
        if self.reports.len() >= self.config.max_reports {
            return;
        }
        self.reports.push(report);
    }

    /// Ensures `thread`'s vector clock exists, exactly as the thread's
    /// first access would create it. Broadcast to the replicas that do
    /// *not* receive that first access, so every replica's known-thread
    /// count — an input to the shared-history cost model — stays equal to
    /// the sequential detector's at the same point in the stream.
    pub fn ensure_thread(&mut self, thread: ThreadId) {
        self.thread_vc(thread);
    }

    /// True if `thread` already has a vector clock. The shard plane uses
    /// this on a restored canonical detector to seed its clocked-thread
    /// set, so threads known before the pause are never re-broadcast.
    pub fn knows_thread(&self, thread: ThreadId) -> bool {
        self.threads.get(thread.index() as u64).is_some()
    }

    /// A fresh detector sharing this one's synchronisation state: the
    /// configuration, storage representation and every thread and lock
    /// vector clock are copied; variable metadata, dedup entries, reports,
    /// candidates and statistics start empty. Shard replicas fork from the
    /// canonical detector so a replica created mid-history (a resumed
    /// snapshot) judges accesses with exactly the clocks the sequential
    /// detector would hold; from then on the broadcast synchronisation
    /// stream keeps every replica's clock plane identical.
    pub fn fork_clock_plane(&self) -> FastTrack {
        let mut ft =
            FastTrack::with_config(self.config.clone()).with_packed_words(self.packed_words());
        ft.threads = self.threads.clone();
        ft.locks = self.locks.clone();
        ft
    }

    /// Overwrites the last-access cost memo. The merge sets the canonical
    /// detector's memo from whichever replica processed the globally last
    /// access, since the memo is part of the serialized snapshot surface.
    pub fn set_last_cost(&mut self, cost: u64) {
        self.last_cost = cost;
    }

    /// Inserts a variable state at `block` directly into storage, without
    /// touching `blocks_tracked` (the block was already counted by the
    /// replica that created it). Used to hand a page's states to the
    /// canonical detector on escalation and at merge time.
    pub fn insert_var_state(&mut self, block: u64, state: VarState) {
        match &mut self.vars {
            VarStorage::Packed(vars) => vars.insert_state(block, state),
            VarStorage::Reference(store) => {
                let shift = self.config.granularity.trailing_zeros();
                store.insert(Addr::new(block << shift), state);
            }
        }
    }

    /// The blocks recorded in the deduplication set, in arbitrary order.
    /// A block races in exactly one replica (pages are owned by exactly one
    /// replica at a time), so unioning these into the canonical detector
    /// reproduces the sequential dedup set.
    pub fn reported_block_list(&self) -> Vec<u64> {
        self.reported_blocks.iter().copied().collect()
    }

    /// Adds blocks to the deduplication set (set semantics: duplicates are
    /// harmless).
    pub fn extend_reported_blocks(&mut self, blocks: impl IntoIterator<Item = u64>) {
        self.reported_blocks.extend(blocks);
    }

    /// Merges a shard replica's per-access counters into this detector's
    /// statistics (see [`FastTrackStats::merge_access_plane`] for why the
    /// synchronisation counters are excluded).
    pub fn merge_access_stats(&mut self, other: &FastTrackStats) {
        self.stats.merge_access_plane(other);
    }

    /// Serializes the detector's complete state — configuration, thread and
    /// lock clocks, every tracked variable state (storage-independent, via
    /// [`FastTrack::var_states`]), dedup set, reports, statistics and the
    /// last-cost memo — into one snapshot section.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        out.put_u64(self.config.granularity);
        out.put_bool(self.config.epoch_optimization);
        out.put_usize(self.config.max_reports);
        out.put_bool(self.config.dedup_by_block);
        out.put_bool(self.packed_words());

        let put_clock = |out: &mut SectionWriter, vc: &VectorClock| {
            let raw = vc.raw_clocks();
            out.put_usize(raw.len());
            for &c in raw {
                out.put_u32(c);
            }
        };
        for map in [&self.threads, &self.locks] {
            out.put_usize(map.len());
            for (key, vc) in map.iter() {
                out.put_u64(key);
                put_clock(out, vc);
            }
        }

        let put_epoch = |out: &mut SectionWriter, e: Epoch| {
            out.put_u32(e.clock());
            out.put_u32(e.thread().raw());
        };
        let states = self.var_states();
        out.put_usize(states.len());
        for (block, state) in &states {
            out.put_u64(*block);
            put_epoch(out, state.write);
            match &state.read {
                ReadState::Exclusive(e) => {
                    out.put_u8(0);
                    put_epoch(out, *e);
                }
                ReadState::Shared(rvc) => {
                    out.put_u8(1);
                    put_clock(out, rvc);
                }
            }
        }

        let mut reported: Vec<u64> = self.reported_blocks.iter().copied().collect();
        reported.sort_unstable();
        out.put_usize(reported.len());
        for block in reported {
            out.put_u64(block);
        }

        out.put_usize(self.reports.len());
        for report in &self.reports {
            out.put_u8(match report.kind {
                ReportKind::DataRace => 0,
                ReportKind::AtomicityViolation => 1,
                ReportKind::Other => 2,
            });
            out.put_u64(report.addr.raw());
            out.put_u32(report.thread.raw());
            match report.other_thread {
                None => out.put_u8(0),
                Some(t) => {
                    out.put_u8(1);
                    out.put_u32(t.raw());
                }
            }
            match report.instr {
                None => out.put_u8(0),
                Some(i) => {
                    out.put_u8(1);
                    out.put_u32(i.block().raw());
                    out.put_u16(i.index());
                }
            }
            out.put_str(&report.message);
        }

        for v in [
            self.stats.reads,
            self.stats.writes,
            self.stats.read_same_epoch,
            self.stats.write_same_epoch,
            self.stats.read_share_promotions,
            self.stats.acquires,
            self.stats.releases,
            self.stats.forks,
            self.stats.joins,
            self.stats.barriers,
            self.stats.races_detected,
            self.stats.blocks_tracked,
        ] {
            out.put_u64(v);
        }
        out.put_u64(self.last_cost);
    }

    /// Rebuilds a detector from a snapshot section written by
    /// [`FastTrack::encode_snapshot`]. The restored detector is
    /// behavior-identical to the serialized one: same clocks, same variable
    /// states (re-packed into whichever storage was active), same dedup set,
    /// reports, statistics and cost memo.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed payload.
    pub fn decode_snapshot(r: &mut SectionReader<'_>) -> Result<FastTrack, SnapshotError> {
        let granularity = r.get_u64()?;
        let epoch_optimization = r.get_bool()?;
        let max_reports = r.get_usize()?;
        let dedup_by_block = r.get_bool()?;
        let packed = r.get_bool()?;
        if !granularity.is_power_of_two() {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                format!("granularity {granularity} is not a power of two"),
            ));
        }
        let config = FastTrackConfig {
            granularity,
            epoch_optimization,
            max_reports,
            dedup_by_block,
        };
        let mut ft = FastTrack::with_config(config).with_packed_words(packed);

        let get_clock = |r: &mut SectionReader<'_>| -> Result<VectorClock, SnapshotError> {
            let len = r.get_usize()?;
            let mut clocks = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                clocks.push(r.get_u32()?);
            }
            Ok(VectorClock::from_raw_clocks(clocks))
        };
        for map_is_threads in [true, false] {
            let count = r.get_usize()?;
            for _ in 0..count {
                let key = r.get_u64()?;
                let vc = get_clock(r)?;
                let map = if map_is_threads {
                    &mut ft.threads
                } else {
                    &mut ft.locks
                };
                *map.get_or_insert_with(key, VectorClock::new) = vc;
            }
        }

        let get_epoch = |r: &mut SectionReader<'_>| -> Result<Epoch, SnapshotError> {
            let clock = r.get_u32()?;
            let thread = r.get_u32()?;
            Ok(Epoch::new(clock, ThreadId::new(thread)))
        };
        let var_count = r.get_usize()?;
        for _ in 0..var_count {
            let block = r.get_u64()?;
            let write = get_epoch(r)?;
            let read = match r.get_u8()? {
                0 => ReadState::Exclusive(get_epoch(r)?),
                1 => ReadState::Shared(Box::new(get_clock(r)?)),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid read-state tag {other}"),
                    ))
                }
            };
            let state = VarState { write, read };
            match &mut ft.vars {
                VarStorage::Packed(vars) => vars.insert_state(block, state),
                VarStorage::Reference(store) => {
                    let shift = granularity.trailing_zeros();
                    store.insert(Addr::new(block << shift), state);
                }
            }
        }

        let reported_count = r.get_usize()?;
        for _ in 0..reported_count {
            ft.reported_blocks.insert(r.get_u64()?);
        }

        let report_count = r.get_usize()?;
        for _ in 0..report_count {
            let kind = match r.get_u8()? {
                0 => ReportKind::DataRace,
                1 => ReportKind::AtomicityViolation,
                2 => ReportKind::Other,
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid report kind {other}"),
                    ))
                }
            };
            let addr = Addr::new(r.get_u64()?);
            let thread = ThreadId::new(r.get_u32()?);
            let other_thread = match r.get_u8()? {
                0 => None,
                1 => Some(ThreadId::new(r.get_u32()?)),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid option tag {other}"),
                    ))
                }
            };
            let instr = match r.get_u8()? {
                0 => None,
                1 => {
                    let block = r.get_u32()?;
                    let index = r.get_u16()?;
                    Some(InstrId::new(aikido_types::BlockId::new(block), index))
                }
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid option tag {other}"),
                    ))
                }
            };
            let message = r.get_str()?;
            ft.reports.push(AnalysisReport {
                kind,
                addr,
                thread,
                other_thread,
                instr,
                message,
            });
        }

        let stats = &mut ft.stats;
        for field in [
            &mut stats.reads,
            &mut stats.writes,
            &mut stats.read_same_epoch,
            &mut stats.write_same_epoch,
            &mut stats.read_share_promotions,
            &mut stats.acquires,
            &mut stats.releases,
            &mut stats.forks,
            &mut stats.joins,
            &mut stats.barriers,
            &mut stats.races_detected,
            &mut stats.blocks_tracked,
        ] {
            *field = r.get_u64()?;
        }
        ft.last_cost = r.get_u64()?;
        Ok(ft)
    }
}

impl SharedDataAnalysis for FastTrack {
    fn name(&self) -> &'static str {
        "fasttrack"
    }

    fn on_access(&mut self, cx: AccessContext) {
        match cx.kind {
            AccessKind::Read => self.read_at(cx.thread, cx.addr, Some(cx.instr)),
            AccessKind::Write => self.write_at(cx.thread, cx.addr, Some(cx.instr)),
        }
    }

    fn on_access_batch(&mut self, run: &[AccessContext], costs: &mut Vec<u64>) {
        costs.clear();
        let Some((first, rest)) = run.split_first() else {
            return;
        };
        costs.reserve(run.len());
        // The first access runs the full scalar path (it may be the one that
        // creates the thread's clock, in which case the scalar path's
        // before-ensure `threads_known` must be reproduced exactly).
        self.on_access(*first);
        costs.push(self.last_access_cost_cycles());
        if rest.is_empty() {
            return;
        }
        // Snapshot the per-access prolog once: accesses never create thread
        // clocks for an already-known thread, never advance its epoch, and a
        // run contains no synchronisation, so every remaining access would
        // recompute exactly these values.
        let thread = first.thread;
        let threads_known = self.threads.len().max(1) as u64;
        let epoch = self
            .threads
            .get(thread.index() as u64)
            .expect("first access ensured the thread clock")
            .epoch_of(thread);
        for cx in rest {
            debug_assert_eq!(cx.thread, thread, "a run belongs to one thread");
            match cx.kind {
                AccessKind::Read => {
                    self.stats.reads += 1;
                    self.read_with_epoch(cx.thread, cx.addr, Some(cx.instr), epoch, threads_known);
                }
                AccessKind::Write => {
                    self.stats.writes += 1;
                    self.write_with_epoch(cx.thread, cx.addr, Some(cx.instr), epoch, threads_known);
                }
            }
            costs.push(self.last_access_cost_cycles());
        }
    }

    fn on_access_run(
        &mut self,
        page: Vpn,
        kind: AccessKind,
        run: &[AccessContext],
        costs: &mut Vec<u64>,
    ) {
        let _ = kind;
        // The slab hoist below pays a handle resolution and probe packing up
        // front; short runs (and non-slab configurations) are cheaper
        // through the batch entry point, which hoists the per-access prolog
        // but dispatches storage per access. Delegating keeps the scalar
        // contract in exactly one place.
        const SLAB_RUN_MIN: usize = 4;
        let slab_run = run.len() >= SLAB_RUN_MIN
            && self.config.granularity >= 8
            && matches!(self.vars, VarStorage::Packed(_));
        if !slab_run {
            return self.on_access_batch(run, costs);
        }
        costs.clear();
        let Some((first, rest)) = run.split_first() else {
            return;
        };
        costs.reserve(run.len());
        // The first access runs the full scalar path (it may create the
        // thread's clock and it allocates the page's slab), exactly like
        // `on_access_batch`.
        self.on_access(*first);
        costs.push(self.last_access_cost_cycles());
        // Hoist the per-access prolog once per run (see `on_access_batch`),
        // and — the packed plane's whole point — resolve the page's slab and
        // pack the thread's epoch probes once: every access of the run lands
        // in the same slab (the caller guarantees one page per run, and at
        // granularity ≥ 8 a page maps into exactly one slab), so the
        // remaining accesses index words by slot with no directory probe and
        // no per-access `block_of` arithmetic beyond a shift.
        let thread = first.thread;
        let threads_known = self.threads.len().max(1) as u64;
        let epoch = self
            .threads
            .get(thread.index() as u64)
            .expect("first access ensured the thread clock")
            .epoch_of(thread);
        {
            let shift = self.config.granularity.trailing_zeros();
            let handle = {
                let VarStorage::Packed(vars) = &mut self.vars else {
                    unreachable!("just matched the packed storage");
                };
                vars.resolve_block(first.addr.raw() >> shift)
            };
            // One probe pack covers all four fast-path compares of the run —
            // read lane, spill hint, write lane and the ownership-epoch
            // owned-write check — so the per-access ownership test is a
            // single masked compare against a hoisted constant.
            let probes = EpochProbes::pack(epoch);
            for cx in rest {
                debug_assert_eq!(cx.thread, thread, "a run belongs to one thread");
                debug_assert_eq!(cx.addr.page(), page, "a run stays on one page");
                let slot = aikido_types::SlabDirectory::split(cx.addr.raw() >> shift).1;
                match cx.kind {
                    AccessKind::Read => {
                        self.stats.reads += 1;
                        self.read_packed(
                            handle,
                            slot,
                            thread,
                            cx.addr,
                            Some(cx.instr),
                            epoch,
                            probes,
                            threads_known,
                        );
                    }
                    AccessKind::Write => {
                        self.stats.writes += 1;
                        self.write_packed(
                            handle,
                            slot,
                            thread,
                            cx.addr,
                            Some(cx.instr),
                            epoch,
                            probes,
                            threads_known,
                        );
                    }
                }
                costs.push(self.last_access_cost_cycles());
            }
        }
    }

    fn on_acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.acquire(thread, lock);
    }

    fn on_release(&mut self, thread: ThreadId, lock: LockId) {
        self.release(thread, lock);
    }

    fn on_fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.fork(parent, child);
    }

    fn on_join(&mut self, parent: ThreadId, child: ThreadId) {
        self.join(parent, child);
    }

    fn on_barrier(&mut self, threads: &[ThreadId], _id: u32) {
        self.barrier(threads);
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        self.reports.clone()
    }

    fn access_cost_cycles(&self) -> u64 {
        // Calibrated so that full instrumentation of every memory access lands
        // in the tens-to-hundreds-of-x slowdown band the paper reports for
        // binary-level FastTrack.
        55
    }

    fn last_access_cost_cycles(&self) -> u64 {
        self.last_cost.max(cost::SAME_EPOCH)
    }

    fn sync_cost_cycles(&self) -> u64 {
        120
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    fn addr(raw: u64) -> Addr {
        Addr::new(raw)
    }

    #[test]
    fn single_thread_never_races() {
        let mut ft = FastTrack::new();
        for i in 0..100 {
            ft.write(t(0), addr(0x1000 + 8 * i));
            ft.read(t(0), addr(0x1000 + 8 * i));
        }
        assert!(ft.races().is_empty());
        assert_eq!(ft.races_detected(), 0);
    }

    #[test]
    fn write_write_race_is_detected() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x10));
        ft.write(t(1), addr(0x10));
        assert_eq!(ft.races().len(), 1);
        assert_eq!(ft.races()[0].kind, ReportKind::DataRace);
        assert_eq!(ft.races()[0].other_thread, Some(t(0)));
    }

    #[test]
    fn read_write_race_is_detected() {
        let mut ft = FastTrack::new();
        ft.read(t(0), addr(0x20));
        ft.write(t(1), addr(0x20));
        assert_eq!(ft.races().len(), 1);
        assert!(ft.races()[0].message.contains("prior read"));
    }

    #[test]
    fn write_read_race_is_detected() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x30));
        ft.read(t(1), addr(0x30));
        assert_eq!(ft.races().len(), 1);
        assert!(ft.races()[0].message.contains("prior write"));
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut ft = FastTrack::new();
        ft.read(t(0), addr(0x40));
        ft.read(t(1), addr(0x40));
        ft.read(t(2), addr(0x40));
        assert!(ft.races().is_empty());
        assert!(ft.stats().read_share_promotions >= 1);
    }

    #[test]
    fn lock_discipline_prevents_races() {
        let mut ft = FastTrack::new();
        let l = LockId::new(7);
        for round in 0..3 {
            for i in 0..2 {
                let th = t(i);
                ft.acquire(th, l);
                ft.write(th, addr(0x50));
                ft.read(th, addr(0x50));
                ft.release(th, l);
            }
            let _ = round;
        }
        assert!(ft.races().is_empty());
    }

    #[test]
    fn different_locks_do_not_synchronise() {
        let mut ft = FastTrack::new();
        ft.acquire(t(0), LockId::new(1));
        ft.write(t(0), addr(0x60));
        ft.release(t(0), LockId::new(1));
        ft.acquire(t(1), LockId::new(2));
        ft.write(t(1), addr(0x60));
        ft.release(t(1), LockId::new(2));
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x70));
        ft.fork(t(0), t(1));
        ft.write(t(1), addr(0x70));
        assert!(ft.races().is_empty());
        // But the parent's *subsequent* write is concurrent with the child's.
        ft.write(t(0), addr(0x78));
        ft.write(t(1), addr(0x78));
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut ft = FastTrack::new();
        ft.fork(t(0), t(1));
        ft.write(t(1), addr(0x80));
        ft.join(t(0), t(1));
        ft.write(t(0), addr(0x80));
        assert!(ft.races().is_empty());
    }

    #[test]
    fn barrier_orders_all_participants() {
        let mut ft = FastTrack::new();
        let threads = [t(0), t(1), t(2), t(3)];
        for &th in &threads {
            ft.write(th, addr(0x100 + 8 * th.raw() as u64));
        }
        ft.barrier(&threads);
        // After the barrier any thread may read any slot without racing.
        for &th in &threads {
            for other in 0..4u64 {
                ft.read(th, addr(0x100 + 8 * other));
            }
        }
        assert!(ft.races().is_empty());
    }

    #[test]
    fn accesses_in_same_block_are_conflated() {
        // 8-byte granularity: offsets 0 and 4 share a block, which the paper
        // accepts as a potential source of false positives.
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x200));
        ft.write(t(1), addr(0x204));
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn accesses_in_different_blocks_are_independent() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x200));
        ft.write(t(1), addr(0x208));
        assert!(ft.races().is_empty());
    }

    #[test]
    fn duplicate_races_on_same_block_are_deduplicated() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x300));
        ft.write(t(1), addr(0x300));
        ft.write(t(0), addr(0x300));
        ft.write(t(1), addr(0x300));
        assert_eq!(ft.races().len(), 1);
        assert!(ft.races_detected() >= 2);
    }

    #[test]
    fn same_epoch_fast_path_is_taken_for_repeated_accesses() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x400));
        ft.write(t(0), addr(0x400));
        ft.write(t(0), addr(0x400));
        ft.read(t(0), addr(0x400));
        // Reads after a write in the same epoch: the first read updates the
        // read epoch, subsequent ones hit the fast path.
        ft.read(t(0), addr(0x400));
        assert_eq!(ft.stats().write_same_epoch, 2);
        assert!(ft.stats().read_same_epoch >= 1);
        assert!(ft.stats().fast_path_rate() > 0.0);
    }

    #[test]
    fn epoch_optimization_can_be_disabled() {
        let mut ft = FastTrack::with_config(FastTrackConfig::without_epochs());
        ft.write(t(0), addr(0x500));
        ft.write(t(0), addr(0x500));
        ft.read(t(0), addr(0x500));
        ft.read(t(0), addr(0x500));
        assert_eq!(ft.stats().write_same_epoch, 0);
        assert_eq!(ft.stats().read_same_epoch, 0);
        assert!(ft.races().is_empty());

        // Races are still detected without the optimisation.
        ft.write(t(1), addr(0x500));
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn release_acquire_chain_transfers_happens_before_transitively() {
        let mut ft = FastTrack::new();
        let l1 = LockId::new(1);
        let l2 = LockId::new(2);
        ft.write(t(0), addr(0x600));
        ft.release(t(0), l1);
        ft.acquire(t(1), l1);
        ft.release(t(1), l2);
        ft.acquire(t(2), l2);
        ft.write(t(2), addr(0x600));
        assert!(ft.races().is_empty());
    }

    #[test]
    fn shared_data_analysis_trait_drives_the_detector() {
        use aikido_types::{BlockId, InstrId};
        let mut ft = FastTrack::new();
        let cx = |thread: u32, kind: AccessKind| AccessContext {
            thread: t(thread),
            addr: addr(0x700),
            kind,
            size: 8,
            instr: InstrId::new(BlockId::new(3), 1),
        };
        ft.on_access(cx(0, AccessKind::Write));
        ft.on_access(cx(1, AccessKind::Write));
        let reports = SharedDataAnalysis::reports(&ft);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].instr, Some(InstrId::new(BlockId::new(3), 1)));
        assert_eq!(ft.name(), "fasttrack");
        assert!(ft.access_cost_cycles() > 0);
    }

    #[test]
    fn batched_delivery_is_byte_identical_to_scalar_delivery() {
        use aikido_types::{BlockId, InstrId};
        let cx = |thread: u32, addr: u64, kind, i: u16| AccessContext {
            thread: t(thread),
            addr: Addr::new(addr),
            kind,
            size: 8,
            instr: InstrId::new(BlockId::new(2), i),
        };
        // A run with same-epoch repeats, a fresh block, mixed kinds, and a
        // cross-thread prefix that makes the final writes race.
        let prefix = [
            cx(0, 0x900, AccessKind::Write, 0),
            cx(0, 0x908, AccessKind::Read, 1),
        ];
        let run = [
            cx(1, 0x900, AccessKind::Write, 2),
            cx(1, 0x900, AccessKind::Write, 3),
            cx(1, 0x908, AccessKind::Read, 0),
            cx(1, 0x910, AccessKind::Read, 1),
            cx(1, 0x910, AccessKind::Write, 2),
        ];
        let mut scalar = FastTrack::new();
        let mut batched = FastTrack::new();
        let mut scalar_costs = Vec::new();
        let mut batched_costs = Vec::new();
        for &p in &prefix {
            scalar.on_access(p);
            batched.on_access(p);
        }
        for &a in &run {
            scalar.on_access(a);
            scalar_costs.push(scalar.last_access_cost_cycles());
        }
        batched.on_access_batch(&run, &mut batched_costs);
        assert_eq!(batched_costs, scalar_costs);
        assert_eq!(batched.stats(), scalar.stats());
        assert_eq!(batched.races(), scalar.races());
        // Delivering the very first accesses of a fresh thread as a batch
        // (the clock-creating case) must also match.
        let mut scalar = FastTrack::new();
        let mut batched = FastTrack::new();
        scalar_costs.clear();
        for &a in &run {
            scalar.on_access(a);
            scalar_costs.push(scalar.last_access_cost_cycles());
        }
        batched.on_access_batch(&run, &mut batched_costs);
        assert_eq!(batched_costs, scalar_costs);
        assert_eq!(batched.stats(), scalar.stats());
    }

    #[test]
    fn packed_and_reference_storages_agree_on_a_mixed_history() {
        // Reads, writes, promotions, collapses, races, lock discipline and a
        // thread id past the 7-bit packing budget (forcing the spill path).
        let drive = |ft: &mut FastTrack| {
            let l = LockId::new(1);
            ft.write(t(0), addr(0x1000));
            ft.read(t(0), addr(0x1000));
            ft.read(t(1), addr(0x1000)); // write-read race + promotion
            ft.read(t(2), addr(0x1000));
            ft.acquire(t(0), l);
            ft.write(t(0), addr(0x1008));
            ft.release(t(0), l);
            ft.acquire(t(200), l); // thread 200 spills the packed epoch
            ft.write(t(200), addr(0x1008));
            ft.read(t(200), addr(0x1010));
            ft.release(t(200), l);
            ft.barrier(&[t(0), t(1), t(2)]);
            ft.write(t(1), addr(0x1000)); // collapses the shared read state
            ft.write(t(1), addr(0x1000)); // same-epoch fast path
        };
        let mut packed = FastTrack::new();
        assert!(packed.packed_words());
        let mut reference = FastTrack::new().with_packed_words(false);
        assert!(!reference.packed_words());
        drive(&mut packed);
        drive(&mut reference);
        assert_eq!(packed.stats(), reference.stats());
        assert_eq!(packed.races(), reference.races());
        assert_eq!(packed.var_states(), reference.var_states());
        assert_eq!(packed.tracked_blocks(), reference.tracked_blocks());
    }

    #[test]
    fn with_packed_words_converts_accumulated_state_losslessly() {
        let mut ft = FastTrack::new();
        ft.write(t(0), addr(0x2000));
        ft.read(t(0), addr(0x2008));
        ft.read(t(1), addr(0x2008)); // promoted (spilled) read-shared clock
        let before = ft.var_states();
        let ft = ft.with_packed_words(false);
        assert_eq!(ft.var_states(), before);
        let ft = ft.with_packed_words(true);
        assert_eq!(ft.var_states(), before);
    }

    #[test]
    fn batched_run_delivery_is_byte_identical_to_scalar_delivery() {
        use aikido_types::{BlockId, InstrId};
        let cx = |thread: u32, a: u64, kind, i: u16| AccessContext {
            thread: t(thread),
            addr: Addr::new(a),
            kind,
            size: 8,
            instr: InstrId::new(BlockId::new(4), i),
        };
        // One page, one kind — the contract `on_access_run` is called under.
        let run = [
            cx(1, 0x3000, AccessKind::Write, 0),
            cx(1, 0x3000, AccessKind::Write, 1),
            cx(1, 0x3008, AccessKind::Write, 2),
            cx(1, 0x3ff8, AccessKind::Write, 3),
        ];
        let mut scalar = FastTrack::new();
        let mut run_based = FastTrack::new();
        let mut scalar_costs = Vec::new();
        let mut run_costs = Vec::new();
        for &a in &run {
            scalar.on_access(a);
            scalar_costs.push(scalar.last_access_cost_cycles());
        }
        run_based.on_access_run(
            Addr::new(0x3000).page(),
            AccessKind::Write,
            &run,
            &mut run_costs,
        );
        assert_eq!(run_costs, scalar_costs);
        assert_eq!(run_based.stats(), scalar.stats());
        assert_eq!(run_based.var_states(), scalar.var_states());
    }

    #[test]
    fn snapshot_roundtrip_preserves_detector_behavior() {
        for packed in [true, false] {
            let mut ft = FastTrack::new().with_packed_words(packed);
            let l = LockId::new(3);
            ft.fork(t(0), t(1));
            ft.read(t(0), addr(0x100));
            ft.read(t(1), addr(0x100)); // shared read state
            ft.write(t(0), addr(0x200));
            ft.release(t(0), l);
            ft.acquire(t(1), l);
            ft.write(t(1), addr(0x300));
            ft.read(t(1), addr(0x300));
            // Unsynchronised racy write pair (t0's post-release write is not
            // ordered before t1) so reports/reported_blocks are non-empty.
            ft.write(t(0), addr(0x500));
            ft.write(t(1), addr(0x500));
            assert!(!ft.races().is_empty());

            let mut w = SectionWriter::new(*b"FTRK", 2);
            ft.encode_snapshot(&mut w);
            let section_len = w.len();
            let mut snap = aikido_snapshot::SnapshotBuilder::new();
            snap.push(w);
            let snap = snap.finish();
            let mut reader = snap.reader().expect("valid image");
            let mut section = reader.section(*b"FTRK", 2).expect("section present");
            let mut restored = FastTrack::decode_snapshot(&mut section).expect("decodes");
            section.finish().expect("payload fully consumed");
            reader.finish().expect("no trailing sections");

            assert_eq!(restored.config(), ft.config());
            assert_eq!(restored.packed_words(), packed);
            assert_eq!(restored.var_states(), ft.var_states());
            assert_eq!(restored.races(), ft.races());
            assert_eq!(restored.stats(), ft.stats());
            assert_eq!(restored.last_cost, ft.last_cost);

            // Future events evolve identically (clocks survived exactly).
            for detector in [&mut ft, &mut restored] {
                detector.read(t(0), addr(0x100));
                detector.write(t(1), addr(0x100));
                detector.barrier(&[t(0), t(1)]);
                detector.write(t(0), addr(0x400));
            }
            assert_eq!(restored.var_states(), ft.var_states());
            assert_eq!(restored.races(), ft.races());
            assert_eq!(restored.stats(), ft.stats());

            // Re-encoding the restored detector is byte-stable.
            let mut w2 = SectionWriter::new(*b"FTRK", 2);
            restored.encode_snapshot(&mut w2);
            let mut w3 = SectionWriter::new(*b"FTRK", 2);
            ft.encode_snapshot(&mut w3);
            assert_eq!(w2.len(), w3.len());
            assert!(section_len > 0);
        }
    }

    #[test]
    fn write_after_shared_reads_collapses_read_state() {
        let mut ft = FastTrack::new();
        let l = LockId::new(9);
        ft.read(t(0), addr(0x800));
        ft.read(t(1), addr(0x800));
        // Synchronise both readers with the writer so the write is ordered.
        ft.release(t(0), l);
        ft.acquire(t(2), l);
        ft.release(t(1), l);
        ft.acquire(t(2), l);
        ft.write(t(2), addr(0x800));
        assert!(ft.races().is_empty());
        // After the write the variable is back in exclusive (epoch) mode.
        assert!(!ft.stats().read_share_promotions.eq(&0));
    }
}

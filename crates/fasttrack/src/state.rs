//! Per-variable metadata: FastTrack's adaptive epoch/vector-clock
//! representation.

use serde::{Deserialize, Serialize};

use crate::clock::{Epoch, VectorClock};

/// The read history of a variable.
///
/// FastTrack's key optimisation: while reads are totally ordered (each new
/// read happens-after the previous one) a single [`Epoch`] suffices; only
/// when genuinely concurrent reads appear is the representation promoted to a
/// full [`VectorClock`] ("read-shared").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadState {
    /// Reads so far are totally ordered; only the last one is kept.
    Exclusive(Epoch),
    /// Concurrent reads have been observed; one clock per reading thread.
    /// Boxed so the common exclusive case keeps [`VarState`] at two words —
    /// shadow-memory density directly bounds the per-access cache footprint.
    Shared(Box<VectorClock>),
}

impl Default for ReadState {
    fn default() -> Self {
        ReadState::Exclusive(Epoch::ZERO)
    }
}

impl ReadState {
    /// True if the representation has been promoted to a vector clock.
    pub fn is_shared(&self) -> bool {
        matches!(self, ReadState::Shared(_))
    }

    /// True if every recorded read happens-before the state in `vc`.
    pub fn happens_before(&self, vc: &VectorClock) -> bool {
        match self {
            ReadState::Exclusive(e) => e.happens_before(vc),
            ReadState::Shared(rvc) => rvc.le(vc),
        }
    }
}

/// The full metadata FastTrack keeps for one variable (one 8-byte block in
/// the Aikido race detector).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarState {
    /// Epoch of the last write.
    pub write: Epoch,
    /// Read history.
    pub read: ReadState,
}

impl VarState {
    /// A fresh, never-accessed variable.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::ThreadId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn default_state_happens_before_everything() {
        let s = VarState::new();
        let empty = VectorClock::new();
        assert!(s.read.happens_before(&empty));
        assert!(s.write.happens_before(&empty));
        assert!(!s.read.is_shared());
    }

    #[test]
    fn exclusive_read_state_uses_epoch_comparison() {
        let r = ReadState::Exclusive(Epoch::new(3, t(1)));
        let vc: VectorClock = [(t(1), 3)].into_iter().collect();
        assert!(r.happens_before(&vc));
        let behind: VectorClock = [(t(1), 2)].into_iter().collect();
        assert!(!r.happens_before(&behind));
    }

    #[test]
    fn shared_read_state_requires_all_entries_ordered() {
        let rvc: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let r = ReadState::Shared(Box::new(rvc));
        assert!(r.is_shared());
        let covers: VectorClock = [(t(0), 1), (t(1), 5)].into_iter().collect();
        assert!(r.happens_before(&covers));
        let misses_one: VectorClock = [(t(0), 1)].into_iter().collect();
        assert!(!r.happens_before(&misses_one));
    }
}

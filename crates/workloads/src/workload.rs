//! Workload construction: the static program plus per-thread traces.

use std::sync::Arc;

use aikido_dbi::{Program, StaticInstr};
use aikido_types::{AccessKind, Addr, AddrMode, BlockId, MemRef, Operation, ThreadId};

use crate::layout::MemoryLayout;
use crate::scenario::ScenarioModel;
use crate::spec::WorkloadSpec;
use crate::trace::ThreadTrace;

/// A precomputed operation skeleton for one static block: everything about a
/// work-block execution that does *not* depend on the per-execution random
/// draws. Trace generation copies the skeleton in one `memcpy` and patches
/// only each memory operation's address and kind, instead of re-walking the
/// static block and rebuilding the operation list push by push.
#[derive(Clone, Debug)]
pub(crate) struct BlockTemplate {
    /// One operation per static instruction: `Compute { count: 1 }` for
    /// compute/sync instructions, a placeholder [`MemRef`] (correct `instr`
    /// and `mode`, zero address) for memory instructions.
    pub(crate) ops: Vec<Operation>,
    /// Number of memory operations in the block.
    pub(crate) mem_ops: u32,
    /// Number of compute operations in the block.
    pub(crate) compute_ops: u32,
    /// True when run metadata can index the block's operations with `u16`.
    pub(crate) plain: bool,
}

/// The static blocks a workload's threads execute, grouped by role.
#[derive(Clone, Debug)]
pub(crate) struct BlockSets {
    pub(crate) init_blocks: Vec<BlockId>,
    pub(crate) private_blocks: Vec<BlockId>,
    pub(crate) shared_blocks: Vec<BlockId>,
    pub(crate) acquire_block: BlockId,
    pub(crate) release_block: BlockId,
    pub(crate) fork_block: BlockId,
    pub(crate) join_block: BlockId,
    pub(crate) barrier_block: BlockId,
    pub(crate) exit_block: BlockId,
}

/// A fully generated workload: specification, memory layout, static program
/// and the ability to produce each thread's deterministic trace.
#[derive(Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    layout: MemoryLayout,
    /// Shared so DBI engines can reference the program without cloning it.
    program: Arc<Program>,
    blocks: BlockSets,
    /// One operation skeleton per static block, indexed by raw block id.
    templates: Vec<BlockTemplate>,
    /// The declarative episode model implied by the spec (see
    /// [`crate::scenario`]); the input of the static pre-analysis.
    scenario: ScenarioModel,
}

impl Workload {
    /// Generates the workload described by `spec`. The result is a pure
    /// function of the spec (including its seed).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn generate(spec: &WorkloadSpec) -> Self {
        if let Err(problem) = spec.validate() {
            panic!("invalid workload spec: {problem}");
        }
        let layout = MemoryLayout::from_spec(spec);
        let mut program = Program::new();

        let compute_per_block =
            (spec.compute_per_mem * spec.block_mem_instrs as f64).round() as usize;

        // Work blocks interleave compute and memory instructions so that the
        // compute density of the original benchmark is preserved.
        let make_work_block =
            |program: &mut Program, mode: AddrMode, write_bias: bool| -> BlockId {
                let mut instrs = Vec::new();
                let mem = spec.block_mem_instrs as usize;
                for i in 0..mem {
                    // Spread the compute instructions between the memory ones.
                    let computes =
                        (compute_per_block * (i + 1) / mem) - (compute_per_block * i / mem);
                    for _ in 0..computes {
                        instrs.push(StaticInstr::Compute);
                    }
                    // Alternate reads and writes statically; the dynamic trace
                    // decides the actual kind per execution, but keeping both
                    // kinds in the static block mirrors real code.
                    let kind = if write_bias && i % 2 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    instrs.push(StaticInstr::Mem { kind, mode });
                }
                program.add_block(instrs)
            };

        let init_blocks: Vec<BlockId> = (0..2)
            .map(|_| make_work_block(&mut program, AddrMode::Indirect, true))
            .collect();
        let private_blocks: Vec<BlockId> = (0..spec.private_static_blocks)
            .map(|i| {
                let mode = if i % 2 == 0 {
                    AddrMode::Direct
                } else {
                    AddrMode::Indirect
                };
                make_work_block(&mut program, mode, i % 3 == 0)
            })
            .collect();
        let shared_blocks: Vec<BlockId> = (0..spec.shared_static_blocks)
            .map(|i| make_work_block(&mut program, AddrMode::Indirect, i % 2 == 0))
            .collect();

        let sync_block = |program: &mut Program| program.add_block(vec![StaticInstr::Sync]);
        let blocks = BlockSets {
            init_blocks,
            private_blocks,
            shared_blocks,
            acquire_block: sync_block(&mut program),
            release_block: sync_block(&mut program),
            fork_block: sync_block(&mut program),
            join_block: sync_block(&mut program),
            barrier_block: sync_block(&mut program),
            exit_block: sync_block(&mut program),
        };

        let templates = program
            .iter()
            .map(|block| {
                let mut mem_ops = 0u32;
                let mut compute_ops = 0u32;
                let ops: Vec<Operation> = block
                    .iter_ids()
                    .map(|(id, instr)| match instr {
                        StaticInstr::Compute | StaticInstr::Sync => {
                            compute_ops += 1;
                            Operation::Compute { count: 1 }
                        }
                        StaticInstr::Mem { mode, .. } => {
                            mem_ops += 1;
                            Operation::Mem(MemRef {
                                instr: id,
                                addr: Addr::new(0),
                                kind: AccessKind::Read,
                                size: 8,
                                mode: *mode,
                            })
                        }
                    })
                    .collect();
                let plain = ops.len() <= usize::from(u16::MAX);
                BlockTemplate {
                    ops,
                    mem_ops,
                    compute_ops,
                    plain,
                }
            })
            .collect();

        let scenario = crate::scenario::build_model(spec, &layout, &blocks);

        Workload {
            spec: spec.clone(),
            layout,
            program: Arc::new(program),
            blocks,
            templates,
            scenario,
        }
    }

    /// The specification the workload was generated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The memory layout (regions to map before running).
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The static program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A shared handle to the static program (free to clone; used to build
    /// DBI engines without copying the program).
    pub fn program_arc(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// Thread ids participating in the workload (`0..threads`).
    pub fn threads(&self) -> Vec<ThreadId> {
        (0..self.spec.threads).map(ThreadId::new).collect()
    }

    /// The deterministic operation trace of `thread`. Iterating it twice
    /// yields identical block executions.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is not one of [`Workload::threads`].
    pub fn thread_trace(&self, thread: ThreadId) -> ThreadTrace<'_> {
        assert!(
            thread.raw() < self.spec.threads,
            "{thread} is not part of this {}-thread workload",
            self.spec.threads
        );
        ThreadTrace::new(self, thread)
    }

    /// The declarative scenario model: which blocks execute in which phases,
    /// under which locks, addressing which windows. This — not the label
    /// lists below — is what the static pre-analysis consumes.
    pub fn scenario_model(&self) -> &ScenarioModel {
        &self.scenario
    }

    /// Static blocks the *generator* labels private (memory instructions only
    /// ever target private pages). Ground truth for tests and statistics
    /// only: the instrumentation pipeline never reads these labels — it uses
    /// the facts `aikido-staticcheck` derives from [`Workload::scenario_model`].
    pub fn private_block_ids(&self) -> &[BlockId] {
        &self.blocks.private_blocks
    }

    /// Static blocks the *generator* labels as possibly shared-touching.
    /// Like [`Workload::private_block_ids`], exposed for tests and
    /// statistics, never trusted by the pipeline.
    pub fn shared_block_ids(&self) -> &[BlockId] {
        &self.blocks.shared_blocks
    }

    pub(crate) fn block_sets(&self) -> &BlockSets {
        &self.blocks
    }

    /// The precomputed operation skeleton of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not part of the program.
    pub(crate) fn template(&self, block: BlockId) -> &BlockTemplate {
        &self.templates[block.raw() as usize]
    }
}

// The parallel scheduler shares one workload across every producer worker
// (trace generation is a pure function of the workload); keep the compiler
// honest that the sharing stays legal.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<Workload>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::Operation;

    #[test]
    fn generated_program_contains_all_block_groups() {
        let spec = WorkloadSpec::default();
        let w = Workload::generate(&spec);
        assert_eq!(
            w.program().len(),
            2 + spec.private_static_blocks as usize + spec.shared_static_blocks as usize + 6
        );
        assert_eq!(
            w.private_block_ids().len(),
            spec.private_static_blocks as usize
        );
        assert_eq!(
            w.shared_block_ids().len(),
            spec.shared_static_blocks as usize
        );
        assert_eq!(w.threads().len(), spec.threads as usize);
    }

    #[test]
    fn work_blocks_have_requested_memory_density() {
        let spec = WorkloadSpec {
            block_mem_instrs: 4,
            compute_per_mem: 1.5,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(&spec);
        let block = w.program().block(w.shared_block_ids()[0]).unwrap();
        assert_eq!(block.mem_instr_count(), 4);
        assert_eq!(block.len(), 4 + 6); // 4 mem + round(1.5*4) compute
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::parsec("swaptions").unwrap().scaled(0.02);
        let a = Workload::generate(&spec);
        let b = Workload::generate(&spec);
        assert_eq!(a.program().len(), b.program().len());
        let ta: Vec<_> = a.thread_trace(ThreadId::new(1)).collect();
        let tb: Vec<_> = b.thread_trace(ThreadId::new(1)).collect();
        assert_eq!(ta.len(), tb.len());
        assert_eq!(ta, tb);
    }

    #[test]
    fn traces_end_with_exit() {
        let spec = WorkloadSpec::default().scaled(0.05);
        let w = Workload::generate(&spec);
        for t in w.threads() {
            let trace: Vec<_> = w.thread_trace(t).collect();
            let last = trace.last().expect("trace is non-empty");
            assert!(matches!(last.ops.last(), Some(Operation::Exit)));
        }
    }

    #[test]
    #[should_panic(expected = "not part of this")]
    fn trace_of_unknown_thread_panics() {
        let w = Workload::generate(&WorkloadSpec::default());
        let _ = w.thread_trace(ThreadId::new(99));
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn invalid_spec_panics() {
        let spec = WorkloadSpec {
            shared_pages: 0,
            ..WorkloadSpec::default()
        };
        let _ = Workload::generate(&spec);
    }
}

//! Deterministic synthetic multithreaded workloads, calibrated to the PARSEC
//! benchmarks the Aikido paper evaluates on (§5).
//!
//! The paper runs ten PARSEC 2.1 benchmarks (simsmall inputs, 8 threads) under
//! a FastTrack race detector with and without Aikido. We cannot ship PARSEC,
//! a compiler and a real x86 machine inside this reproduction, so this crate
//! generates *synthetic* workloads whose observable properties — the ones
//! that determine Aikido's win or loss — are calibrated per benchmark from
//! the paper's own measurements (Table 2 and Figure 6):
//!
//! * the number of dynamic memory-referencing instructions,
//! * the fraction of those executed by static instructions that ever touch a
//!   shared page (Table 2, "Instrumented Instrs." / "Instrs. Referencing
//!   Memory"),
//! * the fraction of accesses that actually target shared pages (Table 2,
//!   "Shared Page Accesses"; Figure 6),
//! * thread count, synchronisation style (locks, barriers, fork/join),
//!   read/write mix and compute density.
//!
//! A workload is a static [`Program`] (basic blocks over the synthetic ISA)
//! plus one deterministic, seeded operation trace per thread
//! ([`Workload::thread_trace`]). Threads other than the main thread begin
//! only after the main thread's `fork`, every lock-protected access uses the
//! lock that owns that slice of shared memory, and read-mostly shared data is
//! written only before the fork — so the generated histories are race-free
//! unless a preset deliberately injects racy accesses (`racy_pairs`), which is
//! how the canneal RNG race and the adversarial scenarios are modelled.
//!
//! # Examples
//!
//! ```
//! use aikido_workloads::{Workload, WorkloadSpec};
//!
//! let spec = WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.05);
//! let workload = Workload::generate(&spec);
//! let trace: Vec<_> = workload.thread_trace(aikido_types::ThreadId::new(1)).collect();
//! assert!(!trace.is_empty());
//! // The same seed regenerates the same trace.
//! let again: Vec<_> = workload.thread_trace(aikido_types::ThreadId::new(1)).collect();
//! assert_eq!(trace.len(), again.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod layout;
mod scenario;
mod scenarios;
mod spec;
mod trace;
mod workload;

pub use layout::MemoryLayout;
pub use scenario::{AccessPattern, AddrWindow, BlockUse, HeldLocks, ScenarioModel, UsePhase};
pub use scenarios::{
    aliasing_stress_workload, first_access_race_workload, producer_consumer_workload,
    racy_workload, read_only_sharing_workload, spill_pressure_workload,
};
pub use spec::{WorkloadSpec, PARSEC_BENCHMARKS};
pub use trace::{BlockExec, BlockMeta, MemRun, ThreadTrace};
pub use workload::Workload;

// Re-exported so downstream crates can build programs without importing
// aikido-dbi directly.
pub use aikido_dbi::Program;

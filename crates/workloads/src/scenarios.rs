//! Ready-made scenario workloads used by the examples, the integration tests
//! and the §5.3/§6 experiments.

use crate::spec::WorkloadSpec;

/// A small workload with deliberately racy, unsynchronised accesses — the
/// kind of history both FastTrack and Aikido-FastTrack must flag (§5.3). The
/// canneal Mersenne-Twister race is modelled the same way (its preset sets
/// `racy_pairs = 1`).
pub fn racy_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "racy".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 4_000,
        instrumented_exec_fraction: 0.5,
        shared_within_instrumented: 0.9,
        read_fraction: 0.5,
        compute_per_mem: 1.0,
        shared_pages: 16,
        private_pages_per_thread: 16,
        locks: 4,
        locked_shared_fraction: 0.4,
        critical_section_blocks: 2,
        racy_pairs: 4,
        barrier_every: 0,
        shared_static_blocks: 16,
        private_static_blocks: 16,
        block_mem_instrs: 4,
        seed: 0xBAD_C0DE,
    }
}

/// A producer/consumer style workload: heavy lock-protected sharing, no
/// races. Exercises the lock-slice machinery and FastTrack's release/acquire
/// edges.
pub fn producer_consumer_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "producer_consumer".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 6_000,
        instrumented_exec_fraction: 0.7,
        shared_within_instrumented: 0.9,
        read_fraction: 0.5,
        compute_per_mem: 0.8,
        shared_pages: 24,
        private_pages_per_thread: 8,
        locks: 2,
        locked_shared_fraction: 1.0,
        critical_section_blocks: 4,
        racy_pairs: 0,
        barrier_every: 0,
        shared_static_blocks: 24,
        private_static_blocks: 8,
        block_mem_instrs: 4,
        seed: 0x50D0C0,
    }
}

/// A workload where threads share data only by reading a large table
/// initialised before the fork (raytrace-like). Aikido's best case: almost
/// everything is private or read-mostly, and very few instructions need
/// instrumentation.
pub fn read_only_sharing_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "read_only_sharing".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 10_000,
        instrumented_exec_fraction: 0.05,
        shared_within_instrumented: 0.95,
        read_fraction: 0.9,
        compute_per_mem: 2.0,
        shared_pages: 16,
        private_pages_per_thread: 24,
        locks: 2,
        locked_shared_fraction: 0.05,
        critical_section_blocks: 2,
        racy_pairs: 0,
        barrier_every: 0,
        shared_static_blocks: 12,
        private_static_blocks: 64,
        block_mem_instrs: 4,
        seed: 0x0DD5EED,
    }
}

/// An adversarial workload for the static pre-analysis: every shared block
/// aliases private and shared windows (half its accesses fall in the
/// executing thread's private region, half in shared areas, mixing direct and
/// indirect addressing), the private region is a single page, and a racy
/// area is present. A sound analysis must keep every shared block out of the
/// proven-private set even though most of its dynamic accesses are private,
/// while still proving the dedicated private blocks.
pub fn aliasing_stress_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "aliasing_stress".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 3_000,
        instrumented_exec_fraction: 0.6,
        shared_within_instrumented: 0.5,
        read_fraction: 0.5,
        compute_per_mem: 0.5,
        shared_pages: 8,
        private_pages_per_thread: 1,
        locks: 3,
        locked_shared_fraction: 0.5,
        critical_section_blocks: 2,
        racy_pairs: 2,
        barrier_every: 0,
        shared_static_blocks: 8,
        private_static_blocks: 8,
        block_mem_instrs: 4,
        seed: 0xA11A5,
    }
}

/// An adversarial spill-pressure workload for the packed FastTrack plane:
/// nearly every access is an instrumented shared *read*, short blocks (one
/// access each) keep delivery runs tiny, and a frequent barrier advances
/// every thread's epoch so reads keep missing the same-epoch fast path and
/// re-dirtying the promoted (spilled) read-shared clocks. A handful of
/// shared pages focuses all threads on the same blocks, maximizing
/// word→arena traffic and alternating-thread hint churn — the worst case
/// for the spill slot's inline epoch lanes and ownership hints. Race-free
/// by construction (no racy pairs; the barrier orders rounds), so any
/// report difference between the packed and reference planes is a
/// representation bug, not scheduling noise.
pub fn spill_pressure_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "spill_pressure".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 5_000,
        instrumented_exec_fraction: 0.8,
        shared_within_instrumented: 0.95,
        read_fraction: 0.97,
        compute_per_mem: 0.2,
        shared_pages: 4,
        private_pages_per_thread: 2,
        locks: 1,
        locked_shared_fraction: 0.1,
        critical_section_blocks: 1,
        racy_pairs: 0,
        barrier_every: 16,
        shared_static_blocks: 32,
        private_static_blocks: 4,
        block_mem_instrs: 1,
        seed: 0x5B111,
    }
}

/// The adversarial workload for the §6 discussion: exactly one racy pair
/// whose *only* accesses are the first two accesses to their page — the
/// documented false-negative window of the sharing detector.
pub fn first_access_race_workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "first_access_race".to_string(),
        threads: threads.max(2),
        mem_accesses_per_thread: 1_000,
        instrumented_exec_fraction: 0.02,
        shared_within_instrumented: 1.0,
        read_fraction: 0.5,
        compute_per_mem: 1.0,
        shared_pages: 16,
        private_pages_per_thread: 16,
        locks: 1,
        locked_shared_fraction: 0.0,
        critical_section_blocks: 1,
        racy_pairs: 1,
        barrier_every: 0,
        shared_static_blocks: 4,
        private_static_blocks: 8,
        block_mem_instrs: 1,
        seed: 0xF1257,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_specs_are_valid() {
        for spec in [
            racy_workload(4),
            producer_consumer_workload(4),
            read_only_sharing_workload(4),
            first_access_race_workload(2),
            aliasing_stress_workload(4),
            spill_pressure_workload(4),
        ] {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn thread_counts_are_clamped_to_two() {
        assert_eq!(racy_workload(0).threads, 2);
        assert_eq!(producer_consumer_workload(1).threads, 2);
        assert_eq!(read_only_sharing_workload(8).threads, 8);
    }

    #[test]
    fn racy_scenarios_declare_racy_pairs_and_race_free_ones_do_not() {
        assert!(racy_workload(4).racy_pairs > 0);
        assert!(first_access_race_workload(2).racy_pairs > 0);
        assert_eq!(producer_consumer_workload(4).racy_pairs, 0);
        assert_eq!(read_only_sharing_workload(4).racy_pairs, 0);
        assert_eq!(spill_pressure_workload(4).racy_pairs, 0);
    }

    #[test]
    fn spill_pressure_maximizes_read_shared_traffic() {
        let spec = spill_pressure_workload(9);
        assert_eq!(spec.threads, 9, "odd counts cross the inline-lane budget");
        assert!(spec.read_fraction > 0.9, "reads dominate");
        assert!(
            spec.barrier_every > 0,
            "barriers defeat the same-epoch path"
        );
        assert_eq!(spec.block_mem_instrs, 1, "short runs maximize dispatch");
    }
}

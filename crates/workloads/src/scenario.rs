//! The declarative scenario model: the generator's episode structure exposed
//! as data.
//!
//! The trace generator ([`crate::trace`]) enforces a small set of addressing
//! disciplines — private episodes stay inside the executing thread's private
//! region, locked episodes stay inside the held lock's slice, unlocked shared
//! episodes read data written only before the fork. Those disciplines are the
//! ground truth a static analysis needs, but they were previously implicit in
//! generator code plus the trusted `private_block_ids` label list.
//!
//! [`ScenarioModel`] states them explicitly: for every static block, *under
//! which phase and lock regime it can execute* and *which address windows its
//! memory instructions can target*. It plays the role debug info and symbol
//! tables play for a real binary analyzer — a description of the program the
//! analysis may consume, as opposed to a verdict it must trust. The
//! `aikido-staticcheck` crate derives its sharing proofs purely from this
//! model plus the [`crate::MemoryLayout`] geometry, and the runtime audit
//! oracle checks the derived claims against every delivered access.

use serde::{Deserialize, Serialize};

use aikido_types::{Addr, BlockId};

use crate::layout::MemoryLayout;
use crate::spec::WorkloadSpec;
use crate::workload::BlockSets;

/// Where the addresses of one access pattern can fall.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrWindow {
    /// Anywhere inside the private region of the thread executing the block.
    PrivateOfExecutingThread,
    /// A fixed address interval `[base, base + len)`.
    Area {
        /// First byte of the window.
        base: Addr,
        /// Window length in bytes.
        len: u64,
    },
    /// The slice of the lock-protected area owned by the lock the executing
    /// thread currently holds (see [`MemoryLayout::lock_slice`]).
    HeldLockSlice,
}

/// One way a block's memory instructions can address memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPattern {
    /// The address window the accesses fall in.
    pub window: AddrWindow,
    /// True if the pattern can issue reads.
    pub reads: bool,
    /// True if the pattern can issue writes.
    pub writes: bool,
}

/// Which locks the executing thread holds while the block runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeldLocks {
    /// No lock is held.
    NoneHeld,
    /// Exactly one lock is held, drawn from the workload's full lock set;
    /// [`AddrWindow::HeldLockSlice`] windows refer to that lock's slice.
    OneOfAll,
}

/// When in the workload's lifecycle a block use can execute.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UsePhase {
    /// Only by the main thread, strictly before any `fork` — every access
    /// happens-before everything the workers do.
    PreForkMainOnly,
    /// During the parallel work phase, by any thread.
    Work,
}

/// One context in which a static block executes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockUse {
    /// The block being described.
    pub block: BlockId,
    /// Lifecycle phase of the use.
    pub phase: UsePhase,
    /// Lock regime of the use.
    pub held: HeldLocks,
    /// Every address pattern the use's memory instructions can follow. A
    /// single execution draws each access independently from these patterns.
    pub patterns: Vec<AccessPattern>,
}

/// The complete declarative description of a workload's block usage: which
/// blocks run in which phases, under which locks, addressing which windows.
///
/// Blocks without any [`BlockUse`] are never executed by the generator
/// (statically unreachable); blocks without memory instructions need no uses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioModel {
    /// Number of threads, including the main thread.
    pub threads: u32,
    /// Number of distinct locks (ids `0..locks` in layout terms).
    pub locks: u32,
    /// Every block use, in deterministic (block-role) order.
    pub uses: Vec<BlockUse>,
}

impl ScenarioModel {
    /// All uses of `block`, in declaration order.
    pub fn uses_of(&self, block: BlockId) -> impl Iterator<Item = &BlockUse> {
        self.uses.iter().filter(move |u| u.block == block)
    }
}

/// Builds the model implied by `spec`'s probabilities: a pattern or use is
/// included iff the generator can actually emit it (probability strictly
/// positive), so the model is tight — nothing a sound analysis would have to
/// assume is left out, and nothing impossible widens the derived footprints.
pub(crate) fn build_model(
    spec: &WorkloadSpec,
    layout: &MemoryLayout,
    blocks: &BlockSets,
) -> ScenarioModel {
    let mut uses = Vec::new();
    let (rm_base, rm_len) = layout.read_mostly_area();
    let (racy_base, racy_len) = layout.racy_area();
    let rf = spec.read_fraction;
    let f = spec.instrumented_exec_fraction;
    let private = AccessPattern {
        window: AddrWindow::PrivateOfExecutingThread,
        reads: rf > 0.0,
        writes: rf < 1.0,
    };

    // Initialisation: the main thread writes the read-mostly area before any
    // fork (`ThreadTrace::next_init`).
    for &block in &blocks.init_blocks {
        uses.push(BlockUse {
            block,
            phase: UsePhase::PreForkMainOnly,
            held: HeldLocks::NoneHeld,
            patterns: vec![AccessPattern {
                window: AddrWindow::Area {
                    base: rm_base,
                    len: rm_len,
                },
                reads: false,
                writes: true,
            }],
        });
    }

    // Private episodes (`next_private`): emitted whenever the work loop can
    // decline the shared-touching choice.
    if f < 1.0 {
        for &block in &blocks.private_blocks {
            uses.push(BlockUse {
                block,
                phase: UsePhase::Work,
                held: HeldLocks::NoneHeld,
                patterns: vec![private],
            });
        }
    }

    // Locked shared episodes (`next_locked_shared`): one lock held, bodies
    // address the held lock's slice or fall back to private data.
    if f > 0.0 && spec.locked_shared_fraction > 0.0 {
        let mut patterns = Vec::new();
        if spec.shared_within_instrumented > 0.0 {
            patterns.push(AccessPattern {
                window: AddrWindow::HeldLockSlice,
                reads: rf > 0.0,
                writes: rf < 1.0,
            });
        }
        if spec.shared_within_instrumented < 1.0 {
            patterns.push(private);
        }
        for &block in &blocks.shared_blocks {
            uses.push(BlockUse {
                block,
                phase: UsePhase::Work,
                held: HeldLocks::OneOfAll,
                patterns: patterns.clone(),
            });
        }
    }

    // Unlocked shared episodes (`next_unlocked_shared`): read-mostly reads,
    // the deliberately racy area for racy workloads, private fallback.
    if f > 0.0 && spec.locked_shared_fraction < 1.0 {
        let mut patterns = Vec::new();
        if spec.shared_within_instrumented > 0.0 {
            if spec.racy_pairs > 0 && racy_len > 0 {
                patterns.push(AccessPattern {
                    window: AddrWindow::Area {
                        base: racy_base,
                        len: racy_len,
                    },
                    reads: true,
                    writes: true,
                });
            }
            patterns.push(AccessPattern {
                window: AddrWindow::Area {
                    base: rm_base,
                    len: rm_len,
                },
                reads: true,
                writes: false,
            });
        }
        if spec.shared_within_instrumented < 1.0 {
            patterns.push(private);
        }
        for &block in &blocks.shared_blocks {
            uses.push(BlockUse {
                block,
                phase: UsePhase::Work,
                held: HeldLocks::NoneHeld,
                patterns: patterns.clone(),
            });
        }
    }

    ScenarioModel {
        threads: spec.threads,
        locks: spec.locks,
        uses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadSpec};
    use aikido_types::{Operation, SyncOp, ThreadId, PAGE_SIZE};

    fn window_contains(
        workload: &Workload,
        window: &AddrWindow,
        thread: ThreadId,
        held: Option<u32>,
        addr: u64,
    ) -> bool {
        let layout = workload.layout();
        match window {
            AddrWindow::PrivateOfExecutingThread => {
                let base = layout.private_base(thread).raw();
                let len = layout.private_pages() * PAGE_SIZE;
                addr >= base && addr < base + len
            }
            AddrWindow::Area { base, len } => addr >= base.raw() && addr < base.raw() + len,
            AddrWindow::HeldLockSlice => match held {
                None => false,
                Some(lock) => {
                    let (base, len) = layout.lock_slice(lock);
                    addr >= base.raw() && addr < base.raw() + len
                }
            },
        }
    }

    /// The model must be an over-approximation of the generated traces: every
    /// dynamic access of every thread falls inside a window of one of its
    /// block's uses, with a matching read/write capability.
    #[test]
    fn every_generated_access_is_covered_by_the_model() {
        for spec in [
            WorkloadSpec::parsec("raytrace").unwrap().scaled(0.02),
            WorkloadSpec::parsec("fluidanimate").unwrap().scaled(0.02),
            WorkloadSpec::parsec("canneal").unwrap().scaled(0.02),
            crate::scenarios::aliasing_stress_workload(4),
        ] {
            let w = Workload::generate(&spec);
            let model = w.scenario_model();
            for thread in w.threads() {
                let mut held: Option<u32> = None;
                let mut forked = thread != ThreadId::MAIN;
                for exec in w.thread_trace(thread) {
                    for op in &exec.ops {
                        match op {
                            Operation::Sync(SyncOp::Acquire(l)) => {
                                held = Some((l.raw() - 1) as u32)
                            }
                            Operation::Sync(SyncOp::Release(_)) => held = None,
                            Operation::Sync(SyncOp::Fork(_)) => forked = true,
                            Operation::Mem(m) => {
                                let covered = model.uses_of(exec.block).any(|u| {
                                    let phase_ok = match u.phase {
                                        UsePhase::PreForkMainOnly => {
                                            thread == ThreadId::MAIN && !forked
                                        }
                                        UsePhase::Work => true,
                                    };
                                    phase_ok
                                        && u.patterns.iter().any(|p| {
                                            let kind_ok =
                                                if m.kind.is_write() { p.writes } else { p.reads };
                                            kind_ok
                                                && window_contains(
                                                    &w,
                                                    &p.window,
                                                    thread,
                                                    held,
                                                    m.addr.raw(),
                                                )
                                        })
                                });
                                assert!(
                                    covered,
                                    "{:?} access at {:#x} by {thread} (held {held:?}) not \
                                     covered by the model for block {:?}",
                                    m.kind,
                                    m.addr.raw(),
                                    exec.block
                                );
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn model_is_a_pure_function_of_the_spec() {
        let spec = WorkloadSpec::parsec("vips").unwrap().scaled(0.02);
        let a = Workload::generate(&spec);
        let b = Workload::generate(&spec);
        assert_eq!(a.scenario_model(), b.scenario_model());
    }

    #[test]
    fn fully_locked_workloads_have_no_unlocked_shared_uses() {
        let spec = crate::scenarios::producer_consumer_workload(4);
        assert_eq!(spec.locked_shared_fraction, 1.0);
        let w = Workload::generate(&spec);
        for &shared in w.shared_block_ids() {
            assert!(w
                .scenario_model()
                .uses_of(shared)
                .all(|u| u.held == HeldLocks::OneOfAll));
        }
    }

    #[test]
    fn race_free_workloads_declare_no_racy_windows() {
        // The racy area is the only fixed window used with both reads and
        // writes during the work phase; race-free specs must not declare one.
        let spec = WorkloadSpec::parsec("blackscholes").unwrap();
        let w = Workload::generate(&spec);
        assert_eq!(w.layout().racy_area().1, 0);
        for u in &w.scenario_model().uses {
            if u.phase != UsePhase::Work {
                continue;
            }
            for p in &u.patterns {
                if matches!(p.window, AddrWindow::Area { .. }) {
                    assert!(
                        !(p.reads && p.writes),
                        "read+write fixed window in a race-free model"
                    );
                }
            }
        }
    }
}

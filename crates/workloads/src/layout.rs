//! The memory layout of a synthetic workload: one shared region divided into
//! read-mostly, lock-protected and (optionally) racy areas, plus one private
//! region per thread.

use serde::{Deserialize, Serialize};

use aikido_types::{Addr, ThreadId, PAGE_SIZE};

use crate::spec::WorkloadSpec;

/// Base of the shared region in the synthetic address space.
const SHARED_BASE: u64 = 0x1000_0000;
/// Base of the first private region.
const PRIVATE_BASE: u64 = 0x20_0000_0000;
/// Gap (in pages) between consecutive private regions.
const PRIVATE_GAP_PAGES: u64 = 16;

/// The address-space layout of a workload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    shared_base: Addr,
    shared_pages: u64,
    read_mostly_pages: u64,
    locked_pages: u64,
    racy_pages: u64,
    locks: u32,
    threads: u32,
    private_pages_per_thread: u64,
}

impl MemoryLayout {
    /// Computes the layout implied by `spec`.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        let racy_pages = if spec.racy_pairs > 0 { 1 } else { 0 };
        let usable = spec.shared_pages.max(racy_pages + 2);
        let read_mostly_pages = ((usable - racy_pages) * 2 / 5).max(1);
        let locked_pages = (usable - racy_pages - read_mostly_pages).max(1);
        MemoryLayout {
            shared_base: Addr::new(SHARED_BASE),
            shared_pages: read_mostly_pages + locked_pages + racy_pages,
            read_mostly_pages,
            locked_pages,
            racy_pages,
            locks: spec.locks,
            threads: spec.threads,
            private_pages_per_thread: spec.private_pages_per_thread,
        }
    }

    /// Base address of the shared region.
    pub fn shared_base(&self) -> Addr {
        self.shared_base
    }

    /// Total pages in the shared region.
    pub fn shared_pages(&self) -> u64 {
        self.shared_pages
    }

    /// Base and length (bytes) of the read-mostly area (written by the main
    /// thread before forking, read by everyone).
    pub fn read_mostly_area(&self) -> (Addr, u64) {
        (self.shared_base, self.read_mostly_pages * PAGE_SIZE)
    }

    /// Base and length (bytes) of the lock-protected area.
    pub fn locked_area(&self) -> (Addr, u64) {
        (
            self.shared_base.offset(self.read_mostly_pages * PAGE_SIZE),
            self.locked_pages * PAGE_SIZE,
        )
    }

    /// Base and length (bytes) of the slice of the locked area owned by
    /// `lock` (an index below the spec's lock count). Accesses to the slice
    /// are only generated while holding that lock, so they are race-free.
    pub fn lock_slice(&self, lock: u32) -> (Addr, u64) {
        let (base, len) = self.locked_area();
        let slice = (len / self.locks as u64).max(8);
        let offset = (lock as u64 % self.locks as u64) * slice;
        (base.offset(offset.min(len.saturating_sub(slice))), slice)
    }

    /// Base and length (bytes) of the deliberately racy area (empty when the
    /// workload is race-free).
    pub fn racy_area(&self) -> (Addr, u64) {
        (
            self.shared_base
                .offset((self.read_mostly_pages + self.locked_pages) * PAGE_SIZE),
            self.racy_pages * PAGE_SIZE,
        )
    }

    /// Base address of `thread`'s private region.
    pub fn private_base(&self, thread: ThreadId) -> Addr {
        let stride = (self.private_pages_per_thread + PRIVATE_GAP_PAGES) * PAGE_SIZE;
        Addr::new(PRIVATE_BASE + thread.raw() as u64 * stride)
    }

    /// Pages in each private region.
    pub fn private_pages(&self) -> u64 {
        self.private_pages_per_thread
    }

    /// Number of threads in the workload.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Every region that must be mapped (and attached to the sharing
    /// detector) before the workload runs: the shared region followed by one
    /// private region per thread. Returned as `(base, pages)` pairs.
    pub fn regions(&self) -> Vec<(Addr, u64)> {
        let mut regions = vec![(self.shared_base, self.shared_pages)];
        for t in 0..self.threads {
            regions.push((
                self.private_base(ThreadId::new(t)),
                self.private_pages_per_thread,
            ));
        }
        regions
    }

    /// Total bytes of shared memory.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_pages * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        MemoryLayout::from_spec(&WorkloadSpec::default())
    }

    #[test]
    fn areas_partition_the_shared_region() {
        let l = layout();
        let (rm_base, rm_len) = l.read_mostly_area();
        let (lk_base, lk_len) = l.locked_area();
        let (ry_base, ry_len) = l.racy_area();
        assert_eq!(rm_base, l.shared_base());
        assert_eq!(lk_base.raw(), rm_base.raw() + rm_len);
        assert_eq!(ry_base.raw(), lk_base.raw() + lk_len);
        assert_eq!(rm_len + lk_len + ry_len, l.shared_bytes());
    }

    #[test]
    fn race_free_specs_have_no_racy_area() {
        let l = layout();
        assert_eq!(l.racy_area().1, 0);
        let spec = WorkloadSpec {
            racy_pairs: 2,
            ..WorkloadSpec::default()
        };
        let l = MemoryLayout::from_spec(&spec);
        assert_eq!(l.racy_area().1, PAGE_SIZE);
    }

    #[test]
    fn lock_slices_are_disjoint() {
        let l = layout();
        let n = WorkloadSpec::default().locks;
        for a in 0..n {
            for b in (a + 1)..n {
                let (abase, alen) = l.lock_slice(a);
                let (bbase, blen) = l.lock_slice(b);
                let disjoint =
                    abase.raw() + alen <= bbase.raw() || bbase.raw() + blen <= abase.raw();
                assert!(disjoint, "slices {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn lock_slices_stay_inside_locked_area() {
        let l = layout();
        let (base, len) = l.locked_area();
        for lock in 0..WorkloadSpec::default().locks {
            let (sbase, slen) = l.lock_slice(lock);
            assert!(sbase.raw() >= base.raw());
            assert!(sbase.raw() + slen <= base.raw() + len);
        }
    }

    #[test]
    fn private_regions_do_not_overlap_each_other_or_shared() {
        let l = layout();
        let regions = l.regions();
        assert_eq!(regions.len(), 1 + l.threads() as usize);
        for (i, &(abase, apages)) in regions.iter().enumerate() {
            for (j, &(bbase, bpages)) in regions.iter().enumerate() {
                if i == j {
                    continue;
                }
                let aend = abase.raw() + apages * PAGE_SIZE;
                let bend = bbase.raw() + bpages * PAGE_SIZE;
                assert!(
                    aend <= bbase.raw() || bend <= abase.raw(),
                    "regions {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn private_bases_are_per_thread() {
        let l = layout();
        assert_ne!(
            l.private_base(ThreadId::new(0)),
            l.private_base(ThreadId::new(1))
        );
        assert_eq!(
            l.private_pages(),
            WorkloadSpec::default().private_pages_per_thread
        );
    }
}

//! Per-thread trace generation.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use aikido_types::{AccessKind, Addr, BlockId, LockId, MemRef, Operation, SyncOp, ThreadId};

use crate::workload::Workload;

/// One dynamic execution of a static basic block: the block id plus one
/// [`Operation`] per static instruction (aligned by index).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockExec {
    /// The static block being executed.
    pub block: BlockId,
    /// One operation per static instruction of the block.
    pub ops: Vec<Operation>,
}

impl BlockExec {
    /// Number of memory accesses in this execution.
    pub fn mem_accesses(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }

    /// Total dynamic instructions represented.
    pub fn instruction_count(&self) -> u64 {
        self.ops.iter().map(Operation::instruction_count).sum()
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Fork,
    Work,
    Join,
    Exit,
    Done,
}

/// A deterministic iterator over one thread's block executions.
#[derive(Debug)]
pub struct ThreadTrace<'a> {
    workload: &'a Workload,
    thread: ThreadId,
    rng: SmallRng,
    phase: Phase,
    pending: VecDeque<BlockExec>,
    /// Recycled operation buffers: the simulator's scheduler returns each
    /// consumed execution's buffer through [`ThreadTrace::next_into`], so the
    /// steady-state trace loop performs no allocation.
    spare: Vec<Vec<Operation>>,
    remaining_accesses: u64,
    init_remaining: u64,
    init_cursor: u64,
    fork_next: u32,
    join_next: u32,
    work_blocks_emitted: u64,
    barrier_counter: u32,
    /// Barriers that became due while inside a critical section; emitted only
    /// after the lock is released so no thread ever blocks on a barrier while
    /// holding a lock.
    barriers_due: u32,
    forced_racy_write_pending: bool,
}

impl<'a> ThreadTrace<'a> {
    pub(crate) fn new(workload: &'a Workload, thread: ThreadId) -> Self {
        let spec = workload.spec();
        let seed = spec.seed ^ (thread.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let is_main = thread == ThreadId::MAIN;
        let (rm_base, rm_len) = workload.layout().read_mostly_area();
        let _ = rm_base;
        let init_writes = if is_main {
            (rm_len / 64).min((spec.mem_accesses_per_thread / 10).max(64))
        } else {
            0
        };
        ThreadTrace {
            workload,
            thread,
            rng: SmallRng::seed_from_u64(seed),
            phase: if is_main { Phase::Init } else { Phase::Work },
            pending: VecDeque::new(),
            spare: Vec::new(),
            remaining_accesses: spec.mem_accesses_per_thread,
            init_remaining: init_writes,
            init_cursor: 0,
            fork_next: 1,
            join_next: 1,
            work_blocks_emitted: 0,
            barrier_counter: 0,
            barriers_due: 0,
            forced_racy_write_pending: spec.racy_pairs > 0,
        }
    }

    fn spec(&self) -> &crate::WorkloadSpec {
        self.workload.spec()
    }

    /// Pops a recycled operation buffer (or allocates one on cold start).
    fn grab_buf(&mut self) -> Vec<Operation> {
        self.spare.pop().unwrap_or_default()
    }

    /// Returns an exhausted execution's buffer to the pool.
    fn recycle(&mut self, mut ops: Vec<Operation>) {
        const MAX_SPARE: usize = 32;
        if self.spare.len() < MAX_SPARE {
            ops.clear();
            self.spare.push(ops);
        }
    }

    /// Produces the next execution into `out`, reusing `out`'s operation
    /// buffer; returns `false` when the trace is exhausted. This is the
    /// allocation-free interface the simulator's scheduler uses.
    pub fn next_into(&mut self, out: &mut BlockExec) -> bool {
        let buf = std::mem::take(&mut out.ops);
        self.recycle(buf);
        match self.next() {
            Some(exec) => {
                *out = exec;
                true
            }
            None => false,
        }
    }

    /// Fills `batch` with up to `target` executions, reusing the shells
    /// already in `batch` (their operation buffers are recycled in place) and
    /// truncating it to the number actually produced. Returns `false` once
    /// the trace is exhausted (the batch may still hold a final partial run).
    ///
    /// This is the bulk interface the parallel epoch scheduler's producer
    /// workers use: each epoch a worker refills one batch per guest thread it
    /// owns, off the critical commit path.
    pub fn fill_batch(&mut self, batch: &mut Vec<BlockExec>, target: usize) -> bool {
        batch.truncate(target);
        let mut produced = 0;
        while produced < target {
            if produced == batch.len() {
                batch.push(BlockExec::default());
            }
            if !self.next_into(&mut batch[produced]) {
                batch.truncate(produced);
                return false;
            }
            produced += 1;
        }
        batch.truncate(produced);
        true
    }

    fn sync_exec(&mut self, block: BlockId, op: Operation) -> BlockExec {
        let mut ops = self.grab_buf();
        ops.push(op);
        BlockExec { block, ops }
    }

    /// Fills a work block with operations; `pick` chooses the address and
    /// access kind for each memory instruction.
    fn work_exec<F>(&mut self, block: BlockId, mut pick: F) -> BlockExec
    where
        F: FnMut(&mut SmallRng) -> (Addr, AccessKind),
    {
        let mut ops = self.grab_buf();
        let static_block = self
            .workload
            .program()
            .block(block)
            .expect("workload blocks exist in the program");
        ops.reserve(static_block.len());
        for (id, instr) in static_block.iter_ids() {
            match instr {
                aikido_dbi::StaticInstr::Compute => ops.push(Operation::Compute { count: 1 }),
                aikido_dbi::StaticInstr::Sync => ops.push(Operation::Compute { count: 1 }),
                aikido_dbi::StaticInstr::Mem { mode, .. } => {
                    let (addr, kind) = pick(&mut self.rng);
                    ops.push(Operation::Mem(MemRef {
                        instr: id,
                        addr,
                        kind,
                        size: 8,
                        mode: *mode,
                    }));
                }
            }
        }
        BlockExec { block, ops }
    }

    fn random_aligned(rng: &mut SmallRng, base: Addr, len: u64) -> Addr {
        debug_assert!(len >= 8);
        let slots = len / 8;
        base.offset((rng.gen_range(0..slots)) * 8)
    }

    fn next_init(&mut self) -> BlockExec {
        let spec_block_mem = self.spec().block_mem_instrs as u64;
        let (rm_base, rm_len) = self.workload.layout().read_mostly_area();
        let block = self.workload.block_sets().init_blocks
            [(self.init_cursor as usize) % self.workload.block_sets().init_blocks.len()];
        let mut cursor = self.init_cursor;
        let exec = self.work_exec(block, |_rng| {
            let addr = rm_base.offset((cursor * 64) % rm_len.max(64));
            cursor += 1;
            (addr, AccessKind::Write)
        });
        self.init_cursor = cursor;
        self.init_remaining = self.init_remaining.saturating_sub(spec_block_mem);
        exec
    }

    fn next_private(&mut self) -> BlockExec {
        let blocks = &self.workload.block_sets().private_blocks;
        let block = blocks[self.rng.gen_range(0..blocks.len())];
        let layout_base = self.workload.layout().private_base(self.thread);
        let layout_len = self.workload.layout().private_pages() * aikido_types::PAGE_SIZE;
        let read_fraction = self.spec().read_fraction;
        self.work_exec(block, |rng| {
            let addr = Self::random_aligned(rng, layout_base, layout_len);
            let kind = if rng.gen_bool(read_fraction) {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            (addr, kind)
        })
    }

    /// A lock-protected shared block execution: acquire, accesses within the
    /// lock's slice, release. Pushes the tail onto the pending queue and
    /// returns the acquire.
    fn next_locked_shared(&mut self) -> BlockExec {
        let spec = self.spec();
        let (locks, shared_within, read_fraction, critical_section_blocks) = (
            spec.locks,
            spec.shared_within_instrumented,
            spec.read_fraction,
            spec.critical_section_blocks,
        );
        let acquire_block = self.workload.block_sets().acquire_block;
        let lock_index = self.rng.gen_range(0..locks);
        let lock = LockId::new(lock_index as u64 + 1);
        let acquire = self.sync_exec(acquire_block, Operation::Sync(SyncOp::Acquire(lock)));

        let (slice_base, slice_len) = self.workload.layout().lock_slice(lock_index);
        let private_base = self.workload.layout().private_base(self.thread);
        let private_len = self.workload.layout().private_pages() * aikido_types::PAGE_SIZE;
        // A critical section amortises one acquire/release pair over several
        // shared block executions, but never overruns the thread's access
        // budget (which would desynchronise barrier cadences across threads).
        for body_index in 0..critical_section_blocks.max(1) {
            if body_index > 0 && self.remaining_accesses == 0 {
                break;
            }
            let blocks = &self.workload.block_sets().shared_blocks;
            let block = blocks[self.rng.gen_range(0..blocks.len())];
            let body = self.work_exec(block, |rng| {
                if rng.gen_bool(shared_within) {
                    let addr = Self::random_aligned(rng, slice_base, slice_len);
                    let kind = if rng.gen_bool(read_fraction) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    (addr, kind)
                } else {
                    let addr = Self::random_aligned(rng, private_base, private_len);
                    let kind = if rng.gen_bool(read_fraction) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    (addr, kind)
                }
            });
            self.pending.push_back(body);
            self.charge_work_block();
        }
        let release_block = self.workload.block_sets().release_block;
        let release = self.sync_exec(release_block, Operation::Sync(SyncOp::Release(lock)));
        self.pending.push_back(release);
        self.flush_due_barriers();
        acquire
    }

    /// Accounts one work block against the thread's access budget and barrier
    /// cadence. Barriers are only recorded as *due* here; they are emitted by
    /// [`ThreadTrace::flush_due_barriers`] once the thread holds no lock.
    fn charge_work_block(&mut self) {
        let spec_block_mem = self.spec().block_mem_instrs as u64;
        let barrier_every = self.spec().barrier_every;
        self.remaining_accesses = self.remaining_accesses.saturating_sub(spec_block_mem);
        self.work_blocks_emitted += 1;
        if barrier_every > 0 && self.work_blocks_emitted.is_multiple_of(barrier_every) {
            self.barriers_due += 1;
        }
    }

    /// Emits any barriers that became due, outside of critical sections.
    fn flush_due_barriers(&mut self) {
        while self.barriers_due > 0 {
            self.barriers_due -= 1;
            let barrier = self.sync_exec(
                self.workload.block_sets().barrier_block,
                Operation::Sync(SyncOp::Barrier(self.barrier_counter)),
            );
            self.barrier_counter += 1;
            self.pending.push_back(barrier);
        }
    }

    /// An unsynchronised shared block execution: reads of read-mostly data
    /// (race-free because it was written before the fork) plus, for racy
    /// workloads, occasional unprotected accesses to the racy area.
    fn next_unlocked_shared(&mut self) -> BlockExec {
        let spec = self.spec();
        let (shared_within, read_fraction, racy_pairs) = (
            spec.shared_within_instrumented,
            spec.read_fraction,
            spec.racy_pairs,
        );
        let blocks = &self.workload.block_sets().shared_blocks;
        let block = blocks[self.rng.gen_range(0..blocks.len())];
        let (rm_base, rm_len) = self.workload.layout().read_mostly_area();
        let (racy_base, racy_len) = self.workload.layout().racy_area();
        let private_base = self.workload.layout().private_base(self.thread);
        let private_len = self.workload.layout().private_pages() * aikido_types::PAGE_SIZE;
        let mut force_racy = self.forced_racy_write_pending && racy_len > 0;
        self.forced_racy_write_pending = false;
        self.work_exec(block, |rng| {
            if rng.gen_bool(shared_within) {
                if racy_pairs > 0 && racy_len > 0 && (force_racy || rng.gen_bool(0.02)) {
                    force_racy = false;
                    let pair = rng.gen_range(0..racy_pairs) as u64;
                    let addr = racy_base.offset((pair * 64) % racy_len.max(64));
                    let kind = if rng.gen_bool(0.5) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    (addr, kind)
                } else {
                    (Self::random_aligned(rng, rm_base, rm_len), AccessKind::Read)
                }
            } else {
                let addr = Self::random_aligned(rng, private_base, private_len);
                let kind = if rng.gen_bool(read_fraction) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                (addr, kind)
            }
        })
    }

    fn next_work(&mut self) -> BlockExec {
        let spec = self.spec();
        // A locked episode emits `critical_section_blocks` shared blocks while
        // a private/unlocked choice emits one, so the per-decision probability
        // must be corrected for the spec's *access-level* fraction to come out
        // right.
        let f = spec.instrumented_exec_fraction;
        let locked_shared_fraction = spec.locked_shared_fraction;
        let weight = locked_shared_fraction * spec.critical_section_blocks.max(1) as f64
            + (1.0 - locked_shared_fraction);
        let choice_prob = if f <= 0.0 {
            0.0
        } else {
            (f / (weight - weight * f + f)).clamp(0.0, 1.0)
        };
        if self.rng.gen_bool(choice_prob) {
            if self.rng.gen_bool(locked_shared_fraction) {
                // The critical section charges its own body blocks.
                self.next_locked_shared()
            } else {
                let exec = self.next_unlocked_shared();
                self.charge_work_block();
                self.flush_due_barriers();
                exec
            }
        } else {
            let exec = self.next_private();
            self.charge_work_block();
            self.flush_due_barriers();
            exec
        }
    }
}

// The parallel epoch scheduler ships each thread's trace to a producer
// worker; this keeps the compiler honest that the move stays legal (a trace
// is plain data plus a shared reference to the immutable workload).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ThreadTrace<'static>>();
};

impl Iterator for ThreadTrace<'_> {
    type Item = BlockExec;

    fn next(&mut self) -> Option<BlockExec> {
        if let Some(exec) = self.pending.pop_front() {
            return Some(exec);
        }
        loop {
            match self.phase {
                Phase::Init => {
                    if self.init_remaining > 0 {
                        return Some(self.next_init());
                    }
                    self.phase = Phase::Fork;
                }
                Phase::Fork => {
                    if self.fork_next < self.spec().threads {
                        let child = ThreadId::new(self.fork_next);
                        self.fork_next += 1;
                        return Some(self.sync_exec(
                            self.workload.block_sets().fork_block,
                            Operation::Sync(SyncOp::Fork(child)),
                        ));
                    }
                    self.phase = Phase::Work;
                }
                Phase::Work => {
                    if self.remaining_accesses > 0 {
                        return Some(self.next_work());
                    }
                    self.phase = if self.thread == ThreadId::MAIN {
                        Phase::Join
                    } else {
                        Phase::Exit
                    };
                }
                Phase::Join => {
                    if self.join_next < self.spec().threads {
                        let child = ThreadId::new(self.join_next);
                        self.join_next += 1;
                        return Some(self.sync_exec(
                            self.workload.block_sets().join_block,
                            Operation::Sync(SyncOp::Join(child)),
                        ));
                    }
                    self.phase = Phase::Exit;
                }
                Phase::Exit => {
                    self.phase = Phase::Done;
                    return Some(
                        self.sync_exec(self.workload.block_sets().exit_block, Operation::Exit),
                    );
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadSpec};

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            mem_accesses_per_thread: 2_000,
            threads: 4,
            ..WorkloadSpec::default()
        }
    }

    fn trace_of(spec: &WorkloadSpec, thread: u32) -> Vec<BlockExec> {
        let w = Workload::generate(spec);
        w.thread_trace(ThreadId::new(thread)).collect()
    }

    #[test]
    fn fill_batch_reproduces_the_iterator_stream() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let sequential: Vec<BlockExec> = w.thread_trace(ThreadId::new(1)).collect();
        let mut batched = Vec::new();
        let mut trace = w.thread_trace(ThreadId::new(1));
        let mut batch = Vec::new();
        loop {
            let more = trace.fill_batch(&mut batch, 7);
            batched.extend(batch.iter().cloned());
            if !more {
                break;
            }
        }
        assert_eq!(batched, sequential);
        // Exhausted traces keep reporting exhaustion with empty batches.
        assert!(!trace.fill_batch(&mut batch, 7));
        assert!(batch.is_empty());
    }

    #[test]
    fn main_thread_forks_every_worker_and_joins_them() {
        let spec = small_spec();
        let trace = trace_of(&spec, 0);
        let forks: Vec<_> = trace
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                Operation::Sync(SyncOp::Fork(t)) => Some(*t),
                _ => None,
            })
            .collect();
        let joins: Vec<_> = trace
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                Operation::Sync(SyncOp::Join(t)) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(
            forks,
            vec![ThreadId::new(1), ThreadId::new(2), ThreadId::new(3)]
        );
        assert_eq!(joins, forks);
    }

    #[test]
    fn workers_do_not_fork_or_join() {
        let spec = small_spec();
        let trace = trace_of(&spec, 2);
        assert!(!trace.iter().flat_map(|b| &b.ops).any(|op| matches!(
            op,
            Operation::Sync(SyncOp::Fork(_)) | Operation::Sync(SyncOp::Join(_))
        )));
    }

    #[test]
    fn acquire_and_release_are_balanced_and_well_nested() {
        let spec = small_spec();
        for thread in 0..spec.threads {
            let trace = trace_of(&spec, thread);
            let mut held: Option<LockId> = None;
            let mut acquires = 0;
            for op in trace.iter().flat_map(|b| &b.ops) {
                match op {
                    Operation::Sync(SyncOp::Acquire(l)) => {
                        assert!(held.is_none(), "nested acquire in generated trace");
                        held = Some(*l);
                        acquires += 1;
                    }
                    Operation::Sync(SyncOp::Release(l)) => {
                        assert_eq!(held, Some(*l), "release of a lock not held");
                        held = None;
                    }
                    _ => {}
                }
            }
            assert!(held.is_none(), "trace ends while holding a lock");
            if thread > 0 {
                assert!(acquires > 0, "worker {thread} never used a lock");
            }
        }
    }

    #[test]
    fn per_thread_access_budget_is_respected() {
        let spec = small_spec();
        let trace = trace_of(&spec, 1);
        let accesses: usize = trace.iter().map(BlockExec::mem_accesses).sum();
        let budget = spec.mem_accesses_per_thread as usize;
        assert!(
            accesses >= budget,
            "must perform at least the requested accesses"
        );
        assert!(
            accesses <= budget + spec.block_mem_instrs as usize,
            "must not overshoot by more than one block"
        );
    }

    #[test]
    fn shared_fraction_roughly_matches_spec() {
        let spec = WorkloadSpec {
            mem_accesses_per_thread: 20_000,
            instrumented_exec_fraction: 0.3,
            shared_within_instrumented: 0.9,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(&spec);
        let layout = w.layout();
        let shared_base = layout.shared_base().raw();
        let shared_end = shared_base + layout.shared_bytes();
        let mut total = 0u64;
        let mut shared = 0u64;
        for exec in w.thread_trace(ThreadId::new(1)) {
            for op in &exec.ops {
                if let Operation::Mem(m) = op {
                    total += 1;
                    if m.addr.raw() >= shared_base && m.addr.raw() < shared_end {
                        shared += 1;
                    }
                }
            }
        }
        let measured = shared as f64 / total as f64;
        let expected = spec.expected_shared_access_fraction();
        assert!(
            (measured - expected).abs() < 0.05,
            "measured {measured:.3}, expected {expected:.3}"
        );
    }

    #[test]
    fn locked_accesses_stay_inside_the_held_locks_slice() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let layout = w.layout();
        for thread in 0..spec.threads {
            let mut held: Option<u32> = None;
            for exec in w.thread_trace(ThreadId::new(thread)) {
                for op in &exec.ops {
                    match op {
                        Operation::Sync(SyncOp::Acquire(l)) => held = Some((l.raw() - 1) as u32),
                        Operation::Sync(SyncOp::Release(_)) => held = None,
                        Operation::Mem(m) => {
                            let (lk_base, lk_len) = layout.locked_area();
                            let in_locked_area = m.addr.raw() >= lk_base.raw()
                                && m.addr.raw() < lk_base.raw() + lk_len;
                            if in_locked_area {
                                let lock =
                                    held.expect("locked-area access outside critical section");
                                let (sbase, slen) = layout.lock_slice(lock);
                                assert!(
                                    m.addr.raw() >= sbase.raw()
                                        && m.addr.raw() < sbase.raw() + slen,
                                    "access outside the held lock's slice"
                                );
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn barriers_are_emitted_at_the_same_cadence_on_every_thread() {
        let mut spec = small_spec();
        spec.barrier_every = 20;
        let w = Workload::generate(&spec);
        let barrier_count = |t: u32| {
            w.thread_trace(ThreadId::new(t))
                .flat_map(|b| b.ops)
                .filter(|op| matches!(op, Operation::Sync(SyncOp::Barrier(_))))
                .count()
        };
        let counts: Vec<_> = (0..spec.threads).map(barrier_count).collect();
        assert!(counts[0] > 0);
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    }

    #[test]
    fn racy_workloads_touch_the_racy_area_from_multiple_threads() {
        let mut spec = small_spec();
        spec.racy_pairs = 1;
        let w = Workload::generate(&spec);
        let (racy_base, racy_len) = w.layout().racy_area();
        assert!(racy_len > 0);
        let mut threads_touching = 0;
        for t in 0..spec.threads {
            let touches = w
                .thread_trace(ThreadId::new(t))
                .flat_map(|b| b.ops)
                .any(|op| match op {
                    Operation::Mem(m) => {
                        m.addr.raw() >= racy_base.raw() && m.addr.raw() < racy_base.raw() + racy_len
                    }
                    _ => false,
                });
            if touches {
                threads_touching += 1;
            }
        }
        assert!(
            threads_touching >= 2,
            "need at least two threads for a race"
        );
    }

    #[test]
    fn read_mostly_area_is_only_written_before_the_fork() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let (rm_base, rm_len) = w.layout().read_mostly_area();
        for t in 0..spec.threads {
            let mut forked = t != 0; // workers run entirely after the fork
            for exec in w.thread_trace(ThreadId::new(t)) {
                for op in &exec.ops {
                    match op {
                        Operation::Sync(SyncOp::Fork(_)) => forked = true,
                        Operation::Mem(m)
                            if forked
                                && m.addr.raw() >= rm_base.raw()
                                && m.addr.raw() < rm_base.raw() + rm_len =>
                        {
                            assert_eq!(
                                m.kind,
                                AccessKind::Read,
                                "read-mostly data written after fork would be a race"
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

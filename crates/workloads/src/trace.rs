//! Per-thread trace generation.

use std::collections::VecDeque;

use rand::distributions::{Bernoulli, Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use aikido_types::{AccessKind, Addr, BlockId, LockId, Operation, SyncOp, ThreadId, Vpn};

use crate::workload::Workload;

/// A maximal run of consecutive memory operations within one [`BlockExec`]
/// that share their target page and access kind — the unit the simulator's
/// batched block kernels process with one page-state read and one
/// inline-check probe instead of one per access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemRun {
    /// Index of the run's first operation in [`BlockExec::ops`].
    pub start: u16,
    /// Number of consecutive memory operations in the run.
    pub len: u16,
    /// Page every access of the run targets.
    pub page: Vpn,
    /// Kind (read or write) of every access in the run.
    pub kind: AccessKind,
}

/// Per-operation metadata precomputed when a [`BlockExec`] is generated, so
/// the simulator's hot loop never has to re-derive it per access.
///
/// `plain == false` is always safe: consumers must fall back to decoding
/// [`BlockExec::ops`] directly (which is what happens for hand-built
/// executions that never call [`BlockMeta::rebuild`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockMeta {
    /// True when the operation list contains only memory operations and
    /// single-instruction compute operations, **and** `runs`/`mem_ops`/
    /// `compute_ops` faithfully describe it. Kernels may then skip the
    /// per-operation decode entirely.
    pub plain: bool,
    /// Maximal `(page, kind)` runs over the memory operations, in order.
    /// Complete only when `plain` is true.
    pub runs: Vec<MemRun>,
    /// Number of memory operations (valid only when `plain` is true).
    pub mem_ops: u32,
    /// Number of compute operations, each representing exactly one dynamic
    /// instruction (valid only when `plain` is true).
    pub compute_ops: u32,
}

impl BlockMeta {
    /// Recomputes the metadata from `ops`, reusing the `runs` allocation.
    pub fn rebuild(&mut self, ops: &[Operation]) {
        self.runs.clear();
        self.mem_ops = 0;
        self.compute_ops = 0;
        self.plain = ops.len() <= usize::from(u16::MAX);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Operation::Mem(m) => {
                    self.mem_ops += 1;
                    let page = m.addr.page();
                    match self.runs.last_mut() {
                        Some(run)
                            if run.page == page
                                && run.kind == m.kind
                                && usize::from(run.start) + usize::from(run.len) == i =>
                        {
                            run.len += 1;
                        }
                        _ => self.runs.push(MemRun {
                            start: i as u16,
                            len: 1,
                            page,
                            kind: m.kind,
                        }),
                    }
                }
                Operation::Compute { count: 1 } => self.compute_ops += 1,
                _ => self.plain = false,
            }
        }
    }
}

/// One dynamic execution of a static basic block: the block id plus one
/// [`Operation`] per static instruction (aligned by index).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockExec {
    /// The static block being executed.
    pub block: BlockId,
    /// One operation per static instruction of the block.
    pub ops: Vec<Operation>,
    /// Precomputed decode of `ops` (see [`BlockMeta`]); generated traces fill
    /// this in, hand-built executions may leave it defaulted.
    pub meta: BlockMeta,
}

impl BlockExec {
    /// Number of memory accesses in this execution.
    pub fn mem_accesses(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }

    /// Total dynamic instructions represented.
    pub fn instruction_count(&self) -> u64 {
        self.ops.iter().map(Operation::instruction_count).sum()
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Fork,
    Work,
    Join,
    Exit,
    Done,
}

/// Everything the per-block generation loop would otherwise recompute from
/// the spec and layout on every call, hoisted to trace construction: layout
/// areas, spec constants, and precomputed RNG samplers. Every sampler draws
/// exactly one `next_u64` and yields the exact value the corresponding
/// `gen_bool`/`gen_range` call would have produced, so hoisting changes no
/// trace byte (pinned by the vendored rand's bit-compatibility tests and by
/// `tests/report_regression.rs` downstream).
#[derive(Debug)]
struct GenParams {
    block_mem_instrs: u64,
    barrier_every: u64,
    critical_section_blocks: u32,
    racy_pairs: u32,
    private_base: Addr,
    rm_base: Addr,
    rm_len: u64,
    racy_base: Addr,
    racy_len: u64,
    /// Probability that a work decision picks a shared-touching episode,
    /// corrected for critical-section amortisation (see `next_work`).
    choice: Bernoulli,
    locked: Bernoulli,
    read: Bernoulli,
    shared_within: Bernoulli,
    racy: Bernoulli,
    half: Bernoulli,
    private_block: Uniform<usize>,
    shared_block: Uniform<usize>,
    lock: Uniform<u32>,
    private_slot: Uniform<u64>,
    slice_slot: Uniform<u64>,
    rm_slot: Uniform<u64>,
    racy_pair: Option<Uniform<u32>>,
}

impl GenParams {
    fn new(workload: &Workload, thread: ThreadId) -> Self {
        let spec = workload.spec();
        let layout = workload.layout();
        let (rm_base, rm_len) = layout.read_mostly_area();
        let (racy_base, racy_len) = layout.racy_area();
        let private_base = layout.private_base(thread);
        let private_len = layout.private_pages() * aikido_types::PAGE_SIZE;
        let (_, slice_len) = layout.lock_slice(0);
        // The per-decision probability corrected for the spec's access-level
        // fraction: a locked episode emits `critical_section_blocks` shared
        // blocks while a private/unlocked choice emits one.
        let f = spec.instrumented_exec_fraction;
        let weight = spec.locked_shared_fraction * spec.critical_section_blocks.max(1) as f64
            + (1.0 - spec.locked_shared_fraction);
        let choice_prob = if f <= 0.0 {
            0.0
        } else {
            (f / (weight - weight * f + f)).clamp(0.0, 1.0)
        };
        GenParams {
            block_mem_instrs: spec.block_mem_instrs as u64,
            barrier_every: spec.barrier_every,
            critical_section_blocks: spec.critical_section_blocks,
            racy_pairs: spec.racy_pairs,
            private_base,
            rm_base,
            rm_len,
            racy_base,
            racy_len,
            choice: Bernoulli::new(choice_prob),
            locked: Bernoulli::new(spec.locked_shared_fraction),
            read: Bernoulli::new(spec.read_fraction),
            shared_within: Bernoulli::new(spec.shared_within_instrumented),
            racy: Bernoulli::new(0.02),
            half: Bernoulli::new(0.5),
            private_block: Uniform::new(0, workload.block_sets().private_blocks.len()),
            shared_block: Uniform::new(0, workload.block_sets().shared_blocks.len()),
            lock: Uniform::new(0, spec.locks),
            private_slot: Uniform::new(0, private_len / 8),
            slice_slot: Uniform::new(0, slice_len / 8),
            rm_slot: Uniform::new(0, rm_len / 8),
            racy_pair: (spec.racy_pairs > 0).then(|| Uniform::new(0, spec.racy_pairs)),
        }
    }
}

/// A deterministic iterator over one thread's block executions.
#[derive(Debug)]
pub struct ThreadTrace<'a> {
    workload: &'a Workload,
    thread: ThreadId,
    rng: SmallRng,
    gen: GenParams,
    phase: Phase,
    pending: VecDeque<BlockExec>,
    /// Recycled `(operations, runs)` buffer pairs: the simulator's scheduler
    /// returns each consumed execution's buffers through
    /// [`ThreadTrace::next_into`], so the steady-state trace loop performs no
    /// allocation.
    spare: Vec<(Vec<Operation>, Vec<MemRun>)>,
    remaining_accesses: u64,
    init_remaining: u64,
    init_cursor: u64,
    fork_next: u32,
    join_next: u32,
    work_blocks_emitted: u64,
    barrier_counter: u32,
    /// Barriers that became due while inside a critical section; emitted only
    /// after the lock is released so no thread ever blocks on a barrier while
    /// holding a lock.
    barriers_due: u32,
    forced_racy_write_pending: bool,
}

impl<'a> ThreadTrace<'a> {
    pub(crate) fn new(workload: &'a Workload, thread: ThreadId) -> Self {
        let spec = workload.spec();
        let seed = spec.seed ^ (thread.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let is_main = thread == ThreadId::MAIN;
        let (rm_base, rm_len) = workload.layout().read_mostly_area();
        let _ = rm_base;
        let init_writes = if is_main {
            (rm_len / 64).min((spec.mem_accesses_per_thread / 10).max(64))
        } else {
            0
        };
        ThreadTrace {
            workload,
            thread,
            rng: SmallRng::seed_from_u64(seed),
            gen: GenParams::new(workload, thread),
            phase: if is_main { Phase::Init } else { Phase::Work },
            pending: VecDeque::new(),
            spare: Vec::new(),
            remaining_accesses: spec.mem_accesses_per_thread,
            init_remaining: init_writes,
            init_cursor: 0,
            fork_next: 1,
            join_next: 1,
            work_blocks_emitted: 0,
            barrier_counter: 0,
            barriers_due: 0,
            forced_racy_write_pending: spec.racy_pairs > 0,
        }
    }

    fn spec(&self) -> &crate::WorkloadSpec {
        self.workload.spec()
    }

    /// Pops a recycled buffer pair (or allocates one on cold start).
    fn grab_buf(&mut self) -> (Vec<Operation>, Vec<MemRun>) {
        self.spare.pop().unwrap_or_default()
    }

    /// Returns an exhausted execution's buffers to the pool.
    fn recycle(&mut self, mut ops: Vec<Operation>, mut runs: Vec<MemRun>) {
        const MAX_SPARE: usize = 32;
        if self.spare.len() < MAX_SPARE {
            ops.clear();
            runs.clear();
            self.spare.push((ops, runs));
        }
    }

    /// Produces the next execution into `out`, reusing `out`'s operation
    /// buffer; returns `false` when the trace is exhausted. This is the
    /// allocation-free interface the simulator's scheduler uses.
    pub fn next_into(&mut self, out: &mut BlockExec) -> bool {
        let ops = std::mem::take(&mut out.ops);
        let runs = std::mem::take(&mut out.meta.runs);
        self.recycle(ops, runs);
        match self.next() {
            Some(exec) => {
                *out = exec;
                true
            }
            None => false,
        }
    }

    /// Fills `batch` with up to `target` executions, reusing the shells
    /// already in `batch` (their operation buffers are recycled in place) and
    /// truncating it to the number actually produced. Returns `false` once
    /// the trace is exhausted (the batch may still hold a final partial run).
    ///
    /// This is the bulk interface the parallel epoch scheduler's producer
    /// workers use: each epoch a worker refills one batch per guest thread it
    /// owns, off the critical commit path.
    pub fn fill_batch(&mut self, batch: &mut Vec<BlockExec>, target: usize) -> bool {
        batch.truncate(target);
        let mut produced = 0;
        while produced < target {
            if produced == batch.len() {
                batch.push(BlockExec::default());
            }
            if !self.next_into(&mut batch[produced]) {
                batch.truncate(produced);
                return false;
            }
            produced += 1;
        }
        batch.truncate(produced);
        true
    }

    fn sync_exec(&mut self, block: BlockId, op: Operation) -> BlockExec {
        let (mut ops, runs) = self.grab_buf();
        ops.push(op);
        // Sync executions never reach the batched work-block kernels (the
        // scheduler classifies them first), so `plain` stays false.
        BlockExec {
            block,
            ops,
            meta: BlockMeta {
                plain: false,
                runs,
                mem_ops: 0,
                compute_ops: 0,
            },
        }
    }

    /// Fills a work block with operations; `pick` chooses the address and
    /// access kind for each memory instruction.
    ///
    /// The block's operation skeleton is precomputed once per workload
    /// ([`crate::workload::BlockTemplate`]): this copies it wholesale and
    /// patches only each memory op's address and kind, building the per-op
    /// run metadata in the same pass.
    fn work_exec<F>(&mut self, block: BlockId, mut pick: F) -> BlockExec
    where
        F: FnMut(&mut SmallRng) -> (Addr, AccessKind),
    {
        let (mut ops, runs) = self.grab_buf();
        let tmpl = self.workload.template(block);
        let mut meta = BlockMeta {
            plain: tmpl.plain,
            runs,
            mem_ops: tmpl.mem_ops,
            compute_ops: tmpl.compute_ops,
        };
        ops.extend_from_slice(&tmpl.ops);
        for (i, op) in ops.iter_mut().enumerate() {
            if let Operation::Mem(m) = op {
                let (addr, kind) = pick(&mut self.rng);
                m.addr = addr;
                m.kind = kind;
                if meta.plain {
                    let page = addr.page();
                    match meta.runs.last_mut() {
                        Some(run)
                            if run.page == page
                                && run.kind == kind
                                && usize::from(run.start) + usize::from(run.len) == i =>
                        {
                            run.len += 1;
                        }
                        _ => meta.runs.push(MemRun {
                            start: i as u16,
                            len: 1,
                            page,
                            kind,
                        }),
                    }
                }
            }
        }
        BlockExec { block, ops, meta }
    }

    fn next_init(&mut self) -> BlockExec {
        let spec_block_mem = self.gen.block_mem_instrs;
        let (rm_base, rm_len) = (self.gen.rm_base, self.gen.rm_len);
        let block = self.workload.block_sets().init_blocks
            [(self.init_cursor as usize) % self.workload.block_sets().init_blocks.len()];
        let mut cursor = self.init_cursor;
        let exec = self.work_exec(block, |_rng| {
            let addr = rm_base.offset((cursor * 64) % rm_len.max(64));
            cursor += 1;
            (addr, AccessKind::Write)
        });
        self.init_cursor = cursor;
        self.init_remaining = self.init_remaining.saturating_sub(spec_block_mem);
        exec
    }

    fn next_private(&mut self) -> BlockExec {
        let blocks = &self.workload.block_sets().private_blocks;
        let block = blocks[self.gen.private_block.sample(&mut self.rng)];
        let (base, slot, read) = (self.gen.private_base, self.gen.private_slot, self.gen.read);
        self.work_exec(block, |rng| {
            let addr = base.offset(slot.sample(rng) * 8);
            let kind = if read.sample(rng) {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            (addr, kind)
        })
    }

    /// A lock-protected shared block execution: acquire, accesses within the
    /// lock's slice, release. Pushes the tail onto the pending queue and
    /// returns the acquire.
    fn next_locked_shared(&mut self) -> BlockExec {
        let acquire_block = self.workload.block_sets().acquire_block;
        let lock_index = self.gen.lock.sample(&mut self.rng);
        let lock = LockId::new(lock_index as u64 + 1);
        let acquire = self.sync_exec(acquire_block, Operation::Sync(SyncOp::Acquire(lock)));

        let (slice_base, _) = self.workload.layout().lock_slice(lock_index);
        let (shared_within, read) = (self.gen.shared_within, self.gen.read);
        let (slice_slot, private_slot) = (self.gen.slice_slot, self.gen.private_slot);
        let private_base = self.gen.private_base;
        // A critical section amortises one acquire/release pair over several
        // shared block executions, but never overruns the thread's access
        // budget (which would desynchronise barrier cadences across threads).
        for body_index in 0..self.gen.critical_section_blocks.max(1) {
            if body_index > 0 && self.remaining_accesses == 0 {
                break;
            }
            let blocks = &self.workload.block_sets().shared_blocks;
            let block = blocks[self.gen.shared_block.sample(&mut self.rng)];
            let body = self.work_exec(block, |rng| {
                if shared_within.sample(rng) {
                    let addr = slice_base.offset(slice_slot.sample(rng) * 8);
                    let kind = if read.sample(rng) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    (addr, kind)
                } else {
                    let addr = private_base.offset(private_slot.sample(rng) * 8);
                    let kind = if read.sample(rng) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    (addr, kind)
                }
            });
            self.pending.push_back(body);
            self.charge_work_block();
        }
        let release_block = self.workload.block_sets().release_block;
        let release = self.sync_exec(release_block, Operation::Sync(SyncOp::Release(lock)));
        self.pending.push_back(release);
        self.flush_due_barriers();
        acquire
    }

    /// Accounts one work block against the thread's access budget and barrier
    /// cadence. Barriers are only recorded as *due* here; they are emitted by
    /// [`ThreadTrace::flush_due_barriers`] once the thread holds no lock.
    fn charge_work_block(&mut self) {
        self.remaining_accesses = self
            .remaining_accesses
            .saturating_sub(self.gen.block_mem_instrs);
        self.work_blocks_emitted += 1;
        if self.gen.barrier_every > 0
            && self
                .work_blocks_emitted
                .is_multiple_of(self.gen.barrier_every)
        {
            self.barriers_due += 1;
        }
    }

    /// Emits any barriers that became due, outside of critical sections.
    fn flush_due_barriers(&mut self) {
        while self.barriers_due > 0 {
            self.barriers_due -= 1;
            let barrier = self.sync_exec(
                self.workload.block_sets().barrier_block,
                Operation::Sync(SyncOp::Barrier(self.barrier_counter)),
            );
            self.barrier_counter += 1;
            self.pending.push_back(barrier);
        }
    }

    /// An unsynchronised shared block execution: reads of read-mostly data
    /// (race-free because it was written before the fork) plus, for racy
    /// workloads, occasional unprotected accesses to the racy area.
    fn next_unlocked_shared(&mut self) -> BlockExec {
        let blocks = &self.workload.block_sets().shared_blocks;
        let block = blocks[self.gen.shared_block.sample(&mut self.rng)];
        let (racy_pairs, racy_base, racy_len) =
            (self.gen.racy_pairs, self.gen.racy_base, self.gen.racy_len);
        let (rm_base, rm_slot) = (self.gen.rm_base, self.gen.rm_slot);
        let (private_base, private_slot) = (self.gen.private_base, self.gen.private_slot);
        let (shared_within, read, racy, half) = (
            self.gen.shared_within,
            self.gen.read,
            self.gen.racy,
            self.gen.half,
        );
        let racy_pair = self.gen.racy_pair;
        let mut force_racy = self.forced_racy_write_pending && racy_len > 0;
        self.forced_racy_write_pending = false;
        self.work_exec(block, |rng| {
            if shared_within.sample(rng) {
                if racy_pairs > 0 && racy_len > 0 && (force_racy || racy.sample(rng)) {
                    force_racy = false;
                    let pair = racy_pair.expect("racy_pairs > 0").sample(rng) as u64;
                    let addr = racy_base.offset((pair * 64) % racy_len.max(64));
                    let kind = if half.sample(rng) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    (addr, kind)
                } else {
                    (rm_base.offset(rm_slot.sample(rng) * 8), AccessKind::Read)
                }
            } else {
                let addr = private_base.offset(private_slot.sample(rng) * 8);
                let kind = if read.sample(rng) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                (addr, kind)
            }
        })
    }

    fn next_work(&mut self) -> BlockExec {
        // A locked episode emits `critical_section_blocks` shared blocks while
        // a private/unlocked choice emits one, so the per-decision probability
        // is corrected for the spec's *access-level* fraction — precomputed in
        // [`GenParams::new`].
        if self.gen.choice.sample(&mut self.rng) {
            if self.gen.locked.sample(&mut self.rng) {
                // The critical section charges its own body blocks.
                self.next_locked_shared()
            } else {
                let exec = self.next_unlocked_shared();
                self.charge_work_block();
                self.flush_due_barriers();
                exec
            }
        } else {
            let exec = self.next_private();
            self.charge_work_block();
            self.flush_due_barriers();
            exec
        }
    }
}

// The parallel epoch scheduler ships each thread's trace to a producer
// worker; this keeps the compiler honest that the move stays legal (a trace
// is plain data plus a shared reference to the immutable workload).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ThreadTrace<'static>>();
};

impl Iterator for ThreadTrace<'_> {
    type Item = BlockExec;

    fn next(&mut self) -> Option<BlockExec> {
        if let Some(exec) = self.pending.pop_front() {
            return Some(exec);
        }
        loop {
            match self.phase {
                Phase::Init => {
                    if self.init_remaining > 0 {
                        return Some(self.next_init());
                    }
                    self.phase = Phase::Fork;
                }
                Phase::Fork => {
                    if self.fork_next < self.spec().threads {
                        let child = ThreadId::new(self.fork_next);
                        self.fork_next += 1;
                        return Some(self.sync_exec(
                            self.workload.block_sets().fork_block,
                            Operation::Sync(SyncOp::Fork(child)),
                        ));
                    }
                    self.phase = Phase::Work;
                }
                Phase::Work => {
                    if self.remaining_accesses > 0 {
                        return Some(self.next_work());
                    }
                    self.phase = if self.thread == ThreadId::MAIN {
                        Phase::Join
                    } else {
                        Phase::Exit
                    };
                }
                Phase::Join => {
                    if self.join_next < self.spec().threads {
                        let child = ThreadId::new(self.join_next);
                        self.join_next += 1;
                        return Some(self.sync_exec(
                            self.workload.block_sets().join_block,
                            Operation::Sync(SyncOp::Join(child)),
                        ));
                    }
                    self.phase = Phase::Exit;
                }
                Phase::Exit => {
                    self.phase = Phase::Done;
                    return Some(
                        self.sync_exec(self.workload.block_sets().exit_block, Operation::Exit),
                    );
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadSpec};
    use aikido_types::MemRef;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            mem_accesses_per_thread: 2_000,
            threads: 4,
            ..WorkloadSpec::default()
        }
    }

    fn trace_of(spec: &WorkloadSpec, thread: u32) -> Vec<BlockExec> {
        let w = Workload::generate(spec);
        w.thread_trace(ThreadId::new(thread)).collect()
    }

    #[test]
    fn fill_batch_reproduces_the_iterator_stream() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let sequential: Vec<BlockExec> = w.thread_trace(ThreadId::new(1)).collect();
        let mut batched = Vec::new();
        let mut trace = w.thread_trace(ThreadId::new(1));
        let mut batch = Vec::new();
        loop {
            let more = trace.fill_batch(&mut batch, 7);
            batched.extend(batch.iter().cloned());
            if !more {
                break;
            }
        }
        assert_eq!(batched, sequential);
        // Exhausted traces keep reporting exhaustion with empty batches.
        assert!(!trace.fill_batch(&mut batch, 7));
        assert!(batch.is_empty());
    }

    #[test]
    fn block_meta_faithfully_describes_generated_work_blocks() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let mut work_blocks = 0;
        for exec in w.thread_trace(ThreadId::new(1)) {
            if exec.ops.len() == 1 && !exec.ops[0].is_mem() {
                assert!(!exec.meta.plain, "sync executions are never plain");
                continue;
            }
            work_blocks += 1;
            assert!(exec.meta.plain);
            assert_eq!(exec.meta.mem_ops as usize, exec.mem_accesses());
            assert_eq!(
                exec.meta.compute_ops as usize,
                exec.ops.len() - exec.mem_accesses()
            );
            // Runs tile the memory ops exactly, in order, with uniform
            // (page, kind) and maximal length.
            let mut covered = vec![false; exec.ops.len()];
            for (r, run) in exec.meta.runs.iter().enumerate() {
                assert!(run.len >= 1);
                for i in run.start..run.start + run.len {
                    let m = exec.ops[usize::from(i)]
                        .as_mem()
                        .expect("run covers mem op");
                    assert_eq!(m.addr.page(), run.page);
                    assert_eq!(m.kind, run.kind);
                    covered[usize::from(i)] = true;
                }
                if r > 0 {
                    let prev = exec.meta.runs[r - 1];
                    let adjacent =
                        usize::from(prev.start) + usize::from(prev.len) == usize::from(run.start);
                    assert!(
                        !adjacent || prev.page != run.page || prev.kind != run.kind,
                        "adjacent runs with equal keys must have been merged"
                    );
                }
            }
            for (i, op) in exec.ops.iter().enumerate() {
                assert_eq!(covered[i], op.is_mem(), "op {i} coverage");
            }
            // The fused single-pass construction must agree with the
            // reference rebuild.
            let mut reference = BlockMeta::default();
            reference.rebuild(&exec.ops);
            assert_eq!(exec.meta, reference);
        }
        assert!(work_blocks > 0);
    }

    #[test]
    fn block_meta_rebuild_flags_non_plain_operation_lists() {
        let mut meta = BlockMeta::default();
        meta.rebuild(&[
            Operation::Compute { count: 2 },
            Operation::Mem(MemRef::new(
                aikido_types::InstrId::new(BlockId::new(0), 1),
                Addr::new(0x1000),
                AccessKind::Read,
                aikido_types::AddrMode::Direct,
            )),
        ]);
        assert!(!meta.plain, "multi-instruction compute ops are not plain");
        assert_eq!(meta.runs.len(), 1);
        meta.rebuild(&[Operation::Exit]);
        assert!(!meta.plain);
        assert!(meta.runs.is_empty());
    }

    #[test]
    fn main_thread_forks_every_worker_and_joins_them() {
        let spec = small_spec();
        let trace = trace_of(&spec, 0);
        let forks: Vec<_> = trace
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                Operation::Sync(SyncOp::Fork(t)) => Some(*t),
                _ => None,
            })
            .collect();
        let joins: Vec<_> = trace
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                Operation::Sync(SyncOp::Join(t)) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(
            forks,
            vec![ThreadId::new(1), ThreadId::new(2), ThreadId::new(3)]
        );
        assert_eq!(joins, forks);
    }

    #[test]
    fn workers_do_not_fork_or_join() {
        let spec = small_spec();
        let trace = trace_of(&spec, 2);
        assert!(!trace.iter().flat_map(|b| &b.ops).any(|op| matches!(
            op,
            Operation::Sync(SyncOp::Fork(_)) | Operation::Sync(SyncOp::Join(_))
        )));
    }

    #[test]
    fn acquire_and_release_are_balanced_and_well_nested() {
        let spec = small_spec();
        for thread in 0..spec.threads {
            let trace = trace_of(&spec, thread);
            let mut held: Option<LockId> = None;
            let mut acquires = 0;
            for op in trace.iter().flat_map(|b| &b.ops) {
                match op {
                    Operation::Sync(SyncOp::Acquire(l)) => {
                        assert!(held.is_none(), "nested acquire in generated trace");
                        held = Some(*l);
                        acquires += 1;
                    }
                    Operation::Sync(SyncOp::Release(l)) => {
                        assert_eq!(held, Some(*l), "release of a lock not held");
                        held = None;
                    }
                    _ => {}
                }
            }
            assert!(held.is_none(), "trace ends while holding a lock");
            if thread > 0 {
                assert!(acquires > 0, "worker {thread} never used a lock");
            }
        }
    }

    #[test]
    fn per_thread_access_budget_is_respected() {
        let spec = small_spec();
        let trace = trace_of(&spec, 1);
        let accesses: usize = trace.iter().map(BlockExec::mem_accesses).sum();
        let budget = spec.mem_accesses_per_thread as usize;
        assert!(
            accesses >= budget,
            "must perform at least the requested accesses"
        );
        assert!(
            accesses <= budget + spec.block_mem_instrs as usize,
            "must not overshoot by more than one block"
        );
    }

    #[test]
    fn shared_fraction_roughly_matches_spec() {
        let spec = WorkloadSpec {
            mem_accesses_per_thread: 20_000,
            instrumented_exec_fraction: 0.3,
            shared_within_instrumented: 0.9,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(&spec);
        let layout = w.layout();
        let shared_base = layout.shared_base().raw();
        let shared_end = shared_base + layout.shared_bytes();
        let mut total = 0u64;
        let mut shared = 0u64;
        for exec in w.thread_trace(ThreadId::new(1)) {
            for op in &exec.ops {
                if let Operation::Mem(m) = op {
                    total += 1;
                    if m.addr.raw() >= shared_base && m.addr.raw() < shared_end {
                        shared += 1;
                    }
                }
            }
        }
        let measured = shared as f64 / total as f64;
        let expected = spec.expected_shared_access_fraction();
        assert!(
            (measured - expected).abs() < 0.05,
            "measured {measured:.3}, expected {expected:.3}"
        );
    }

    #[test]
    fn locked_accesses_stay_inside_the_held_locks_slice() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let layout = w.layout();
        for thread in 0..spec.threads {
            let mut held: Option<u32> = None;
            for exec in w.thread_trace(ThreadId::new(thread)) {
                for op in &exec.ops {
                    match op {
                        Operation::Sync(SyncOp::Acquire(l)) => held = Some((l.raw() - 1) as u32),
                        Operation::Sync(SyncOp::Release(_)) => held = None,
                        Operation::Mem(m) => {
                            let (lk_base, lk_len) = layout.locked_area();
                            let in_locked_area = m.addr.raw() >= lk_base.raw()
                                && m.addr.raw() < lk_base.raw() + lk_len;
                            if in_locked_area {
                                let lock =
                                    held.expect("locked-area access outside critical section");
                                let (sbase, slen) = layout.lock_slice(lock);
                                assert!(
                                    m.addr.raw() >= sbase.raw()
                                        && m.addr.raw() < sbase.raw() + slen,
                                    "access outside the held lock's slice"
                                );
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn barriers_are_emitted_at_the_same_cadence_on_every_thread() {
        let mut spec = small_spec();
        spec.barrier_every = 20;
        let w = Workload::generate(&spec);
        let barrier_count = |t: u32| {
            w.thread_trace(ThreadId::new(t))
                .flat_map(|b| b.ops)
                .filter(|op| matches!(op, Operation::Sync(SyncOp::Barrier(_))))
                .count()
        };
        let counts: Vec<_> = (0..spec.threads).map(barrier_count).collect();
        assert!(counts[0] > 0);
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    }

    #[test]
    fn racy_workloads_touch_the_racy_area_from_multiple_threads() {
        let mut spec = small_spec();
        spec.racy_pairs = 1;
        let w = Workload::generate(&spec);
        let (racy_base, racy_len) = w.layout().racy_area();
        assert!(racy_len > 0);
        let mut threads_touching = 0;
        for t in 0..spec.threads {
            let touches = w
                .thread_trace(ThreadId::new(t))
                .flat_map(|b| b.ops)
                .any(|op| match op {
                    Operation::Mem(m) => {
                        m.addr.raw() >= racy_base.raw() && m.addr.raw() < racy_base.raw() + racy_len
                    }
                    _ => false,
                });
            if touches {
                threads_touching += 1;
            }
        }
        assert!(
            threads_touching >= 2,
            "need at least two threads for a race"
        );
    }

    #[test]
    fn read_mostly_area_is_only_written_before_the_fork() {
        let spec = small_spec();
        let w = Workload::generate(&spec);
        let (rm_base, rm_len) = w.layout().read_mostly_area();
        for t in 0..spec.threads {
            let mut forked = t != 0; // workers run entirely after the fork
            for exec in w.thread_trace(ThreadId::new(t)) {
                for op in &exec.ops {
                    match op {
                        Operation::Sync(SyncOp::Fork(_)) => forked = true,
                        Operation::Mem(m)
                            if forked
                                && m.addr.raw() >= rm_base.raw()
                                && m.addr.raw() < rm_base.raw() + rm_len =>
                        {
                            assert_eq!(
                                m.kind,
                                AccessKind::Read,
                                "read-mostly data written after fork would be a race"
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

//! Workload specifications and the PARSEC-calibrated presets.

use serde::{Deserialize, Serialize};

/// Names of the ten PARSEC benchmarks used in the paper's evaluation, in the
/// order of Figure 5 / Table 2.
pub const PARSEC_BENCHMARKS: [&str; 10] = [
    "freqmine",
    "blackscholes",
    "bodytrack",
    "raytrace",
    "swaptions",
    "fluidanimate",
    "vips",
    "x264",
    "canneal",
    "streamcluster",
];

/// Full description of a synthetic workload.
///
/// The two calibration fractions mirror the paper's Table 2:
/// `instrumented_exec_fraction` is the fraction of dynamic memory accesses
/// performed by static instructions that ever touch a shared page (column 2 /
/// column 1), and `shared_within_instrumented` is the probability that such
/// an instruction's access actually targets a shared page (column 3 / column
/// 2). Their product is the benchmark's Figure 6 value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable workload name.
    pub name: String,
    /// Number of threads, including the main thread.
    pub threads: u32,
    /// Dynamic memory accesses performed by each worker thread.
    pub mem_accesses_per_thread: u64,
    /// Fraction of dynamic memory accesses executed by static instructions
    /// that ever access shared pages.
    pub instrumented_exec_fraction: f64,
    /// Probability that an access by such an instruction targets a shared
    /// page.
    pub shared_within_instrumented: f64,
    /// Fraction of memory accesses that are reads.
    pub read_fraction: f64,
    /// Register-only instructions per memory instruction (compute density).
    pub compute_per_mem: f64,
    /// Pages of shared memory (read-mostly + lock-protected + racy areas).
    pub shared_pages: u64,
    /// Pages of private memory per thread.
    pub private_pages_per_thread: u64,
    /// Number of distinct locks protecting slices of the shared area.
    pub locks: u32,
    /// Fraction of shared-touching block executions performed inside a
    /// critical section (the rest are reads of read-mostly data).
    pub locked_shared_fraction: f64,
    /// Number of consecutive shared basic blocks executed inside one critical
    /// section (controls how many accesses each lock acquire/release pair
    /// amortises over).
    pub critical_section_blocks: u32,
    /// Number of deliberately racy address pairs (0 = race-free workload).
    pub racy_pairs: u32,
    /// Insert a barrier across all threads every this many block executions
    /// per thread (0 = no barriers).
    pub barrier_every: u64,
    /// Static shared-touching basic blocks in the program (controls how many
    /// distinct instructions end up instrumented and how many faults are
    /// taken on shared pages).
    pub shared_static_blocks: u32,
    /// Static private-only basic blocks in the program.
    pub private_static_blocks: u32,
    /// Memory instructions per generated basic block.
    pub block_mem_instrs: u32,
    /// RNG seed; everything about the workload is a pure function of the spec.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "custom".to_string(),
            threads: 8,
            mem_accesses_per_thread: 20_000,
            instrumented_exec_fraction: 0.25,
            shared_within_instrumented: 0.8,
            read_fraction: 0.7,
            compute_per_mem: 1.5,
            shared_pages: 24,
            private_pages_per_thread: 24,
            locks: 8,
            locked_shared_fraction: 0.5,
            critical_section_blocks: 4,
            racy_pairs: 0,
            barrier_every: 0,
            shared_static_blocks: 24,
            private_static_blocks: 48,
            block_mem_instrs: 4,
            seed: 0xA1C1D0,
        }
    }
}

impl WorkloadSpec {
    /// The preset calibrated to PARSEC benchmark `name` (8 threads, simsmall
    /// scaled down), or `None` if the name is not one of
    /// [`PARSEC_BENCHMARKS`].
    ///
    /// Calibration sources: Table 2 of the paper (instruction counts and
    /// sharing fractions), Figure 6 (shared-access percentages) and Table 1 /
    /// Figure 5 (relative compute density chosen so the baseline FastTrack
    /// slowdowns reproduce the paper's ordering).
    pub fn parsec(name: &str) -> Option<Self> {
        // (name, mem/thread, instr_frac, shared_within, read_frac,
        //  compute_per_mem, shared_pages, private_pages, locks,
        //  locked_frac, racy, barrier_every, shared_blocks, private_blocks)
        type ParsecPreset = (
            &'static str,
            u64,
            f64,
            f64,
            f64,
            f64,
            u64,
            u64,
            u32,
            f64,
            u32,
            u64,
            u32,
            u32,
        );
        let presets: [ParsecPreset; 10] = [
            (
                "freqmine", 73_000, 0.636, 0.877, 0.72, 0.9, 48, 24, 16, 0.55, 0, 0, 64, 96,
            ),
            (
                "blackscholes",
                20_000,
                0.070,
                0.992,
                0.80,
                2.2,
                16,
                24,
                4,
                0.10,
                0,
                0,
                12,
                64,
            ),
            (
                "bodytrack",
                24_000,
                0.217,
                0.923,
                0.70,
                1.6,
                24,
                24,
                12,
                0.45,
                0,
                40,
                40,
                80,
            ),
            (
                "raytrace", 150_000, 0.0013, 0.852, 0.85, 1.8, 16, 40, 8, 0.30, 0, 0, 48, 128,
            ),
            (
                "swaptions",
                22_000,
                0.167,
                0.713,
                0.75,
                1.9,
                16,
                32,
                8,
                0.35,
                0,
                0,
                24,
                72,
            ),
            (
                "fluidanimate",
                35_000,
                0.640,
                0.751,
                0.60,
                0.6,
                64,
                16,
                32,
                0.75,
                0,
                25,
                96,
                64,
            ),
            (
                "vips", 65_000, 0.243, 0.912, 0.68, 1.1, 32, 24, 16, 0.50, 0, 0, 56, 88,
            ),
            (
                "x264", 20_000, 0.342, 0.858, 0.65, 1.4, 32, 24, 16, 0.55, 0, 0, 88, 96,
            ),
            (
                "canneal", 35_000, 0.123, 0.986, 0.78, 1.5, 24, 24, 8, 0.40, 1, 0, 48, 72,
            ),
            (
                "streamcluster",
                67_000,
                0.378,
                0.981,
                0.74,
                0.8,
                40,
                16,
                12,
                0.60,
                0,
                30,
                56,
                64,
            ),
        ];
        presets.iter().find(|p| p.0 == name).map(|p| WorkloadSpec {
            name: p.0.to_string(),
            threads: 8,
            mem_accesses_per_thread: p.1,
            instrumented_exec_fraction: p.2,
            shared_within_instrumented: p.3,
            read_fraction: p.4,
            compute_per_mem: p.5,
            shared_pages: p.6,
            private_pages_per_thread: p.7,
            locks: p.8,
            locked_shared_fraction: p.9,
            critical_section_blocks: 4,
            racy_pairs: p.10,
            barrier_every: p.11,
            shared_static_blocks: p.12,
            private_static_blocks: p.13,
            block_mem_instrs: 4,
            seed: 0xA1C1D0 ^ fxhash(p.0),
        })
    }

    /// All ten PARSEC presets in Figure 5 order.
    pub fn parsec_suite() -> Vec<Self> {
        PARSEC_BENCHMARKS
            .iter()
            .map(|n| Self::parsec(n).expect("every listed benchmark has a preset"))
            .collect()
    }

    /// Returns the spec with the per-thread access count multiplied by
    /// `factor` (used to shrink workloads for tests or grow them for
    /// benchmarking). The count never drops below 500 accesses.
    pub fn scaled(mut self, factor: f64) -> Self {
        let scaled = (self.mem_accesses_per_thread as f64 * factor).round() as u64;
        self.mem_accesses_per_thread = scaled.max(500);
        self
    }

    /// Returns a copy of the spec with a different thread count (used by the
    /// Table 1 thread-scaling experiment). Takes `&self` so sweeping callers
    /// need no explicit `clone()`.
    pub fn with_threads(&self, threads: u32) -> Self {
        let mut spec = self.clone();
        spec.threads = threads.max(1);
        spec
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a spec from its request-API wire format: a JSON object naming
    /// a PARSEC `preset` plus optional integer overrides. Preset-based on
    /// purpose — presets carry the calibrated fractions and the derived
    /// 64-bit seed, which a float-typed JSON number could not transport
    /// losslessly — so a request selects a preset and tweaks its shape:
    ///
    /// ```json
    /// {"preset": "vips", "threads": 4, "racy_pairs": 1}
    /// ```
    ///
    /// Recognised overrides: `threads`, `mem_accesses_per_thread`,
    /// `racy_pairs`, `barrier_every`. Unknown keys, type mismatches, unknown
    /// presets and overrides that fail [`WorkloadSpec::validate`] are all
    /// errors — a service admission layer rejects the request instead of
    /// running a workload the caller did not describe.
    pub fn from_json_value(value: &serde_json::Value) -> Result<Self, String> {
        let serde_json::Value::Object(entries) = value else {
            return Err("workload spec must be a JSON object".into());
        };
        let preset = entries
            .iter()
            .find(|(k, _)| k == "preset")
            .ok_or("workload spec is missing the 'preset' field")?
            .1
            .as_str()
            .ok_or("'preset' must be a JSON string")?;
        let mut spec =
            Self::parsec(preset).ok_or_else(|| format!("unknown PARSEC preset '{preset}'"))?;
        for (key, value) in entries {
            let int = |field: &str| {
                let n = value
                    .as_f64()
                    .ok_or_else(|| format!("'{field}' must be a JSON number"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("'{field}' must be a non-negative integer, got {n}"));
                }
                Ok(n as u64)
            };
            match key.as_str() {
                "preset" => {}
                "threads" => spec.threads = int("threads")?.min(u32::MAX as u64) as u32,
                "mem_accesses_per_thread" => {
                    spec.mem_accesses_per_thread = int("mem_accesses_per_thread")?
                }
                "racy_pairs" => spec.racy_pairs = int("racy_pairs")?.min(u32::MAX as u64) as u32,
                "barrier_every" => spec.barrier_every = int("barrier_every")?,
                unknown => return Err(format!("unknown workload spec field '{unknown}'")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The expected fraction of dynamic memory accesses that target shared
    /// pages (the quantity plotted in Figure 6).
    pub fn expected_shared_access_fraction(&self) -> f64 {
        self.instrumented_exec_fraction * self.shared_within_instrumented
    }

    /// Total dynamic memory accesses across all worker threads (excluding the
    /// main thread's initialisation writes).
    pub fn total_mem_accesses(&self) -> u64 {
        self.mem_accesses_per_thread * self.threads as u64
    }

    /// Validates the specification, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        for (name, v) in [
            (
                "instrumented_exec_fraction",
                self.instrumented_exec_fraction,
            ),
            (
                "shared_within_instrumented",
                self.shared_within_instrumented,
            ),
            ("read_fraction", self.read_fraction),
            ("locked_shared_fraction", self.locked_shared_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be within [0, 1], got {v}"));
            }
        }
        if self.compute_per_mem < 0.0 {
            return Err("compute_per_mem must be non-negative".into());
        }
        if self.shared_pages == 0 || self.private_pages_per_thread == 0 {
            return Err("shared and private page counts must be non-zero".into());
        }
        if self.locks == 0 {
            return Err("at least one lock is required".into());
        }
        if self.block_mem_instrs == 0 {
            return Err("blocks must contain at least one memory instruction".into());
        }
        if self.critical_section_blocks == 0 {
            return Err("critical sections must span at least one block".into());
        }
        if self.shared_static_blocks == 0 || self.private_static_blocks == 0 {
            return Err("at least one shared and one private static block are required".into());
        }
        Ok(())
    }
}

/// A tiny deterministic string hash (FxHash-style) used to derive per-preset
/// seeds without pulling in a hashing crate.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_parsec_benchmark_has_a_valid_preset() {
        for name in PARSEC_BENCHMARKS {
            let spec = WorkloadSpec::parsec(name).unwrap();
            assert_eq!(spec.name, name);
            assert_eq!(spec.threads, 8);
            spec.validate().unwrap();
        }
        assert_eq!(WorkloadSpec::parsec_suite().len(), 10);
        assert!(WorkloadSpec::parsec("nonexistent").is_none());
    }

    #[test]
    fn presets_are_ordered_like_figure6() {
        // raytrace has by far the least sharing; fluidanimate and freqmine the
        // most — this ordering is what drives Figure 5's speedups.
        let frac = |n: &str| {
            WorkloadSpec::parsec(n)
                .unwrap()
                .expected_shared_access_fraction()
        };
        assert!(frac("raytrace") < 0.01);
        assert!(frac("blackscholes") < 0.10);
        assert!(frac("fluidanimate") > 0.40);
        assert!(frac("freqmine") > 0.50);
        assert!(frac("raytrace") < frac("blackscholes"));
        assert!(frac("blackscholes") < frac("vips"));
        assert!(frac("vips") < frac("fluidanimate"));
    }

    #[test]
    fn scaling_changes_only_the_access_count() {
        let spec = WorkloadSpec::parsec("vips").unwrap();
        let scaled = spec.clone().scaled(0.1);
        assert_eq!(scaled.mem_accesses_per_thread, 6_500);
        assert_eq!(scaled.shared_pages, spec.shared_pages);
        // Never collapses to zero.
        assert_eq!(spec.scaled(0.0).mem_accesses_per_thread, 500);
    }

    #[test]
    fn with_threads_clamps_to_at_least_one() {
        let spec = WorkloadSpec::default().with_threads(0);
        assert_eq!(spec.threads, 1);
        assert_eq!(WorkloadSpec::default().with_threads(4).threads, 4);
    }

    #[test]
    fn validation_rejects_bad_fractions_and_zero_resources() {
        let invalid = [
            WorkloadSpec {
                read_fraction: 1.5,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                shared_pages: 0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                locks: 0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                threads: 0,
                ..WorkloadSpec::default()
            },
        ];
        for spec in invalid {
            assert!(spec.validate().is_err());
        }
        assert!(WorkloadSpec::default().validate().is_ok());
    }

    #[test]
    fn from_json_value_selects_a_preset_and_applies_overrides() {
        let value = serde_json::from_str(r#"{"preset": "vips", "threads": 4}"#).unwrap();
        let spec = WorkloadSpec::from_json_value(&value).unwrap();
        let expected = WorkloadSpec::parsec("vips").unwrap().with_threads(4);
        assert_eq!(spec, expected, "preset + override, seed included");

        for bad in [
            r#"{"threads": 4}"#,
            r#"{"preset": "doesnotexist"}"#,
            r#"{"preset": "vips", "threads": 0}"#,
            r#"{"preset": "vips", "threads": 1.5}"#,
            r#"{"preset": "vips", "seed": 7}"#,
            "[]",
        ] {
            let value = serde_json::from_str(bad).unwrap();
            assert!(WorkloadSpec::from_json_value(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn preset_seeds_differ_between_benchmarks() {
        let a = WorkloadSpec::parsec("vips").unwrap().seed;
        let b = WorkloadSpec::parsec("x264").unwrap().seed;
        assert_ne!(a, b);
    }
}

//! Pinned-run regression: exact `RunReport` numbers for seeded workloads.
//!
//! The simulation is a pure function of the workload spec, and perf-focused
//! PRs (flat tables, software TLBs, inline checks) must not change observable
//! behaviour. These constants were captured from the seed implementation
//! (map-based storage, PR 1) and verified byte-identical against the flat
//! rebuild in PR 2; any future divergence in cycles, counts, VM statistics
//! or race totals fails here with the exact field that drifted.

use aikido::{Mode, RunReport, Simulator, Workload, WorkloadSpec};

/// `(benchmark, mode, cycles, mem, instrumented, shared, segfaults,
/// vm_exits, shadow_misses, races)` at `scaled(0.05)`.
#[allow(clippy::type_complexity)]
const PINNED: [(&str, Mode, u64, u64, u64, u64, u64, u64, u64, usize); 10] = [
    (
        "blackscholes",
        Mode::FullInstrumentation,
        832_707,
        8_100,
        8_100,
        621,
        0,
        0,
        0,
        0,
    ),
    (
        "blackscholes",
        Mode::Aikido,
        458_424,
        8_100,
        506,
        460,
        262,
        1_046,
        6,
        0,
    ),
    (
        "vips",
        Mode::FullInstrumentation,
        3_033_096,
        26_344,
        26_344,
        6_087,
        0,
        0,
        0,
        0,
    ),
    (
        "vips",
        Mode::Aikido,
        1_818_007,
        26_344,
        6_181,
        5_580,
        459,
        2_002,
        36,
        0,
    ),
    (
        "fluidanimate",
        Mode::FullInstrumentation,
        2_100_038,
        14_192,
        14_192,
        6_817,
        0,
        0,
        0,
        0,
    ),
    (
        "fluidanimate",
        Mode::Aikido,
        2_030_786,
        14_192,
        8_467,
        6_356,
        609,
        1_967,
        25,
        0,
    ),
    (
        "raytrace",
        Mode::FullInstrumentation,
        5_239_404,
        60_384,
        60_384,
        432,
        0,
        0,
        0,
        0,
    ),
    (
        "raytrace",
        Mode::Aikido,
        1_039_229,
        60_384,
        23,
        21,
        349,
        2_997,
        16,
        0,
    ),
    (
        "canneal",
        Mode::FullInstrumentation,
        1_490_257,
        14_192,
        14_192,
        1_644,
        0,
        0,
        0,
        1,
    ),
    (
        "canneal",
        Mode::Aikido,
        794_693,
        14_192,
        1_406,
        1_361,
        417,
        1_456,
        13,
        1,
    ),
];

fn run(name: &str, mode: Mode) -> RunReport {
    let spec = WorkloadSpec::parsec(name)
        .expect("pinned benchmarks are PARSEC presets")
        .scaled(0.05);
    Simulator::default().run(&Workload::generate(&spec), mode)
}

#[test]
fn seeded_runs_match_the_seed_implementation_exactly() {
    for (name, mode, cycles, mem, instr, shared, segv, vm_exits, shadow_misses, races) in PINNED {
        let r = run(name, mode);
        let label = format!("{name}/{}", mode.label());
        assert_eq!(r.cycles, cycles, "{label}: cycles drifted");
        assert_eq!(r.counts.mem_accesses, mem, "{label}: mem_accesses drifted");
        assert_eq!(
            r.counts.instrumented_accesses, instr,
            "{label}: instrumented_accesses drifted"
        );
        assert_eq!(
            r.counts.shared_accesses, shared,
            "{label}: shared_accesses drifted"
        );
        assert_eq!(r.counts.segfaults, segv, "{label}: segfaults drifted");
        assert_eq!(r.vm.vm_exits, vm_exits, "{label}: vm_exits drifted");
        assert_eq!(
            r.vm.shadow_misses, shadow_misses,
            "{label}: shadow_misses drifted"
        );
        assert_eq!(r.races.len(), races, "{label}: race count drifted");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let spec = WorkloadSpec::parsec("vips").unwrap().scaled(0.05);
    let w = Workload::generate(&spec);
    let sim = Simulator::default();
    let a = sim.run(&w, Mode::Aikido);
    let b = sim.run(&w, Mode::Aikido);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.vm, b.vm);
    assert_eq!(a.races.len(), b.races.len());
}

//! Fault injection against the snapshot plane (PR 7), in the style of
//! `static_mutation.rs`: take a *valid* checkpoint image, corrupt it with
//! every [`FaultPlan`] family — bit flips, truncation, section reordering,
//! duplicated sections, stale version headers — and require **100%
//! detection**: every injected corruption must surface as a structured
//! [`aikido::SnapshotError`], either when the image is re-parsed or when the
//! resume walks its sections. A single silently-accepted corruption fails
//! the exact-count assertion.
//!
//! The harness's fifth fault family — a worker thread panicking mid-run —
//! is exercised at the engine layer (`aikido-sim`'s
//! `a_panicking_producer_surfaces_as_a_structured_error`), where the
//! panicking block stream can be planted behind the trace-source seam.

use aikido::snapshot::FaultPlan;
use aikido::{CheckpointOutcome, Mode, Simulator, Snapshot, Workload, WorkloadSpec};

fn small(name: &str) -> Workload {
    let spec = WorkloadSpec::parsec(name)
        .expect("known PARSEC preset")
        .scaled(0.02)
        .with_threads(4);
    Workload::generate(&spec)
}

/// A valid midpoint checkpoint image for `w` under `mode`.
fn midpoint_image(sim: &Simulator, w: &Workload, mode: Mode) -> Vec<u8> {
    let total = sim.run(w, mode).counts.block_execs;
    match sim.checkpoint(w, mode, total / 2).expect("checkpoint") {
        CheckpointOutcome::Paused(snapshot) => snapshot.into_bytes(),
        CheckpointOutcome::Completed(_) => panic!("midpoint checkpoint must pause"),
    }
}

/// True when the corrupted image is *detected*: rejected while re-parsing
/// the container, or rejected by the resume's section walk. A resume that
/// succeeds on tampered bytes is a silent divergence — the one outcome the
/// snapshot plane must never produce.
fn detected(sim: &Simulator, w: &Workload, corrupted: Vec<u8>) -> bool {
    match Snapshot::from_bytes(corrupted) {
        Err(_) => true,
        Ok(snapshot) => sim.resume(w, &snapshot).is_err(),
    }
}

/// The number of sections in a valid image (by magic + walking headers is
/// the snapshot crate's job; here we just need an upper bound to enumerate
/// section-level plans, and 8 covers every mode's layout: META, SCHD, FTRK,
/// TCCH, DBIE, AKVM, AKSD).
const SECTION_BOUND: usize = 8;

#[test]
fn every_fault_family_is_detected_in_every_mode() {
    let w = small("blackscholes");
    for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
        let sim = Simulator::default();
        let image = midpoint_image(&sim, &w, mode);

        // Sanity: the untampered image restores.
        let clean = Snapshot::from_bytes(image.clone()).expect("valid image parses");
        assert!(sim.resume(&w, &clean).is_ok(), "{mode:?}: clean resume");

        let mut plans: Vec<FaultPlan> = Vec::new();
        // Bit flips spread across the whole image, every bit position.
        let stride = (image.len() / 97).max(1);
        for (i, offset) in (0..image.len()).step_by(stride).enumerate() {
            plans.push(FaultPlan::BitFlip {
                offset,
                bit: (i % 8) as u8,
            });
        }
        // Truncations: headers, mid-section, and just short of complete.
        for len in [0, 7, 8, image.len() / 3, image.len() / 2, image.len() - 1] {
            plans.push(FaultPlan::Truncate { len });
        }
        // Every section pair swapped, every section duplicated or staled.
        for a in 0..SECTION_BOUND {
            for b in (a + 1)..SECTION_BOUND {
                plans.push(FaultPlan::SwapSections { a, b });
            }
            plans.push(FaultPlan::DuplicateSection { index: a });
            plans.push(FaultPlan::BumpVersion { index: a });
        }

        let mut injected = 0u32;
        let mut caught = 0u32;
        for plan in &plans {
            // `apply` returns None when the plan degenerates (e.g. a swap
            // whose indices alias the same section) — nothing was injected.
            let Some(corrupted) = plan.apply(&image) else {
                continue;
            };
            assert_ne!(corrupted, image, "{mode:?}: {plan} left the image intact");
            injected += 1;
            if detected(&sim, &w, corrupted) {
                caught += 1;
            } else {
                panic!("{mode:?}: {plan} was NOT detected");
            }
        }
        assert_eq!(caught, injected, "{mode:?}: detection must be 100%");
        assert!(
            injected > 100,
            "{mode:?}: only {injected} faults injected — harness lost coverage"
        );
    }
}

#[test]
fn every_benchmark_rejects_a_corrupted_midpoint_image() {
    // A cheaper cross-benchmark sweep: one representative of each fault
    // family per benchmark, all against the Aikido-mode image (the one with
    // the most sections and the richest state).
    for name in [
        "raytrace",
        "blackscholes",
        "vips",
        "fluidanimate",
        "swaptions",
        "canneal",
    ] {
        let w = small(name);
        let sim = Simulator::default();
        let image = midpoint_image(&sim, &w, Mode::Aikido);
        let plans = [
            FaultPlan::BitFlip {
                offset: image.len() / 2,
                bit: 3,
            },
            FaultPlan::Truncate {
                len: image.len() - 9,
            },
            FaultPlan::SwapSections { a: 1, b: 2 },
            FaultPlan::DuplicateSection { index: 0 },
            FaultPlan::BumpVersion { index: 2 },
        ];
        for plan in &plans {
            let corrupted = plan.apply(&image).expect("plan applies");
            assert!(
                detected(&sim, &w, corrupted),
                "{name}: {plan} was NOT detected"
            );
        }
    }
}

#[test]
fn a_snapshot_for_one_workload_cannot_resume_another() {
    // Cross-restore is a *semantic* corruption: both images are pristine, so
    // only the META identity check can catch the mismatch.
    let sim = Simulator::default();
    let a = small("raytrace");
    let b = small("canneal");
    let image = midpoint_image(&sim, &a, Mode::Aikido);
    let snapshot = Snapshot::from_bytes(image).expect("valid image parses");
    let err = sim.resume(&b, &snapshot).expect_err("must be rejected");
    let aikido::SimError::Snapshot(err) = err else {
        panic!("expected a snapshot error, got {err:?}");
    };
    assert_eq!(err.section, "META");
    assert!(err.reason.contains("does not match"), "{}", err.reason);
}

#[test]
fn resume_identity_covers_quantum_and_cost_model() {
    // The mode is *recorded in* the snapshot (resume auto-detects it from
    // META), but the scheduling quantum and the cost model are properties of
    // the simulator doing the resuming — both shape the report, so both are
    // part of the snapshot identity and a mismatch must be rejected.
    let w = small("vips");
    let sim = Simulator::default();
    let image = midpoint_image(&sim, &w, Mode::Aikido);
    let snapshot = Snapshot::from_bytes(image).expect("valid image parses");

    let mut skewed_cost = sim.cost_model().clone();
    skewed_cost.vm_exit_cycles += 1;
    for mismatched in [
        Simulator::default().with_quantum(5),
        Simulator::new(skewed_cost),
    ] {
        let err = mismatched
            .resume(&w, &snapshot)
            .expect_err("must be rejected");
        let aikido::SimError::Snapshot(err) = err else {
            panic!("expected a snapshot error, got {err:?}");
        };
        assert_eq!(err.section, "META");
    }
}

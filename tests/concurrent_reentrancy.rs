//! Concurrent re-entrancy: many `Simulator` instances running at once on OS
//! threads produce reports byte-identical to sequential execution.
//!
//! This is the property the serving layer (`aikido-serve`) is built on: a
//! worker fleet can execute tenant runs side by side without any
//! cross-contamination, so a service-delivered report is exactly the report
//! a dedicated machine would have produced. The simulator holds no global
//! mutable state — each instance owns its VM, DBI engine, sharing detector
//! and analysis — and this suite pins that with byte-level comparisons.

use aikido::prelude::*;

/// A small mixed batch spanning benchmarks, modes, worker counts and
/// configs.
fn batch() -> Vec<(WorkloadSpec, Mode, SimConfig)> {
    let presets = ["blackscholes", "swaptions", "canneal", "bodytrack"];
    let modes = [Mode::Native, Mode::FullInstrumentation, Mode::Aikido];
    let mut batch = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        for (j, mode) in modes.into_iter().enumerate() {
            let config = SimConfig::default()
                .with_scale(0.02)
                .with_workers(1 + (i + j) % 2)
                .with_packed_words((i + j) % 2 == 0);
            let spec = WorkloadSpec::parsec(preset).unwrap();
            batch.push((spec, mode, config));
        }
    }
    batch
}

fn run_one(spec: &WorkloadSpec, mode: Mode, config: &SimConfig) -> RunReport {
    let workload = Workload::generate(&spec.clone().scaled(config.scale));
    Simulator::from_config(config.clone())
        .expect("valid config")
        .try_run(&workload, mode)
        .expect("run succeeds")
}

#[test]
fn concurrent_runs_are_byte_identical_to_sequential_runs() {
    let batch = batch();

    // Sequential reference: one run at a time, in order.
    let sequential: Vec<RunReport> = batch
        .iter()
        .map(|(spec, mode, config)| run_one(spec, *mode, config))
        .collect();

    // Concurrent: every run on its own simultaneous thread.
    let concurrent: Vec<RunReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .iter()
            .map(|(spec, mode, config)| scope.spawn(move || run_one(spec, *mode, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    for ((seq, conc), (spec, mode, _)) in sequential.iter().zip(&concurrent).zip(&batch) {
        assert_eq!(seq, conc, "{} {:?}", spec.name, mode);
        assert_eq!(
            serde_json::to_string(seq).unwrap(),
            serde_json::to_string(conc).unwrap(),
            "{} {:?}: serialized bytes must match",
            spec.name,
            mode
        );
    }
}

#[test]
fn the_same_simulator_instance_is_reusable_across_threads_by_clone() {
    // A cloned simulator is an independent instance: N clones running the
    // same workload concurrently all reproduce the original's report.
    let sim = Simulator::from_config(SimConfig::default().with_quantum(4)).unwrap();
    let spec = WorkloadSpec::parsec("vips").unwrap().scaled(0.02);
    let workload = Workload::generate(&spec);
    let reference = sim.run(&workload, Mode::Aikido);

    let reports: Vec<RunReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sim = sim.clone();
                let workload = &workload;
                scope.spawn(move || sim.run(workload, Mode::Aikido))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in &reports {
        assert_eq!(report, &reference);
    }
}

//! End-to-end integration tests across the whole stack: workloads → VM →
//! sharing detector → DBI → FastTrack → simulator.

use aikido::prelude::*;
use aikido::workloads::{producer_consumer_workload, racy_workload, read_only_sharing_workload};
use std::collections::BTreeSet;

fn race_blocks(report: &RunReport) -> BTreeSet<u64> {
    report.races.iter().map(|r| r.addr.raw() / 8).collect()
}

#[test]
fn aikido_and_full_agree_on_race_free_workloads() {
    for spec in [
        producer_consumer_workload(4),
        read_only_sharing_workload(4),
        WorkloadSpec::parsec("blackscholes")
            .unwrap()
            .scaled(0.05)
            .with_threads(4),
        WorkloadSpec::parsec("swaptions")
            .unwrap()
            .scaled(0.05)
            .with_threads(4),
    ] {
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        let full = system.run(&workload, Mode::FullInstrumentation);
        let aikido = system.run(&workload, Mode::Aikido);
        assert_eq!(
            full.race_count(),
            0,
            "{}: full reported {:?}",
            spec.name,
            full.races
        );
        assert_eq!(
            aikido.race_count(),
            0,
            "{}: aikido reported {:?}",
            spec.name,
            aikido.races
        );
    }
}

#[test]
fn aikido_and_full_find_the_same_races_on_racy_workloads() {
    let workload = Workload::generate(&racy_workload(6));
    let system = AikidoSystem::new();
    let full = system.run(&workload, Mode::FullInstrumentation);
    let aikido = system.run(&workload, Mode::Aikido);

    assert!(
        full.race_count() > 0,
        "the racy workload must actually race"
    );
    assert!(
        aikido.race_count() > 0,
        "aikido must also observe the races"
    );
    // Aikido never adds false positives relative to the full tool.
    let full_blocks = race_blocks(&full);
    for block in race_blocks(&aikido) {
        assert!(
            full_blocks.contains(&block),
            "aikido-only race at block {block:#x}"
        );
    }
}

#[test]
fn aikido_is_cheaper_than_full_instrumentation_on_low_sharing_workloads() {
    let spec = WorkloadSpec::parsec("raytrace").unwrap().scaled(0.05);
    let comparison = AikidoSystem::new().compare_spec(&spec);
    assert!(
        comparison.aikido_speedup() > 1.5,
        "raytrace-like workloads must benefit, got {:.2}x",
        comparison.aikido_speedup()
    );
    assert!(comparison.full_slowdown() > comparison.aikido_slowdown());
}

#[test]
fn aikido_instruments_only_shared_touching_instructions() {
    let spec = WorkloadSpec::parsec("canneal")
        .unwrap()
        .scaled(0.05)
        .with_threads(4);
    let workload = Workload::generate(&spec);
    let report = AikidoSystem::new().run(&workload, Mode::Aikido);
    let c = report.counts;
    assert!(c.instrumented_accesses < c.mem_accesses);
    assert!(c.shared_accesses <= c.instrumented_accesses);
    assert!(c.segfaults > 0);
    assert!(
        c.segfaults < c.mem_accesses / 10,
        "faults must be rare relative to accesses"
    );
    // The sharing detector's own view must be consistent with the run counts.
    assert_eq!(report.sharing.faults_handled, c.segfaults);
    assert_eq!(report.vm.aikido_faults_delivered, c.segfaults);
}

#[test]
fn simulated_runs_are_deterministic_across_repeats() {
    let spec = WorkloadSpec::parsec("x264")
        .unwrap()
        .scaled(0.05)
        .with_threads(4);
    let workload = Workload::generate(&spec);
    let system = AikidoSystem::new();
    let a = system.run(&workload, Mode::Aikido);
    let b = system.run(&workload, Mode::Aikido);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.races, b.races);

    let full_a = system.run(&workload, Mode::FullInstrumentation);
    let full_b = system.run(&workload, Mode::FullInstrumentation);
    assert_eq!(full_a.cycles, full_b.cycles);
}

#[test]
fn barrier_heavy_workloads_complete_and_stay_race_free() {
    // bodytrack and streamcluster presets use barriers; they must neither
    // deadlock the scheduler nor produce false races.
    for name in ["bodytrack", "streamcluster"] {
        let spec = WorkloadSpec::parsec(name)
            .unwrap()
            .scaled(0.05)
            .with_threads(4);
        let workload = Workload::generate(&spec);
        let report = AikidoSystem::new().run(&workload, Mode::Aikido);
        assert!(report.counts.mem_accesses > 0);
        assert_eq!(report.race_count(), 0, "{name}: {:?}", report.races);
        assert!(
            report.fasttrack.unwrap().barriers > 0,
            "{name} must exercise barriers"
        );
    }
}

#[test]
fn thread_scaling_shows_growing_overheads_and_shrinking_aikido_advantage() {
    // Run at a larger scale than the other tests: Table 1's shape only
    // emerges once the one-off page-protection faults are amortised over a
    // realistic number of accesses.
    let spec = WorkloadSpec::parsec("fluidanimate").unwrap().scaled(0.4);
    let slowdowns: Vec<(f64, f64)> = [2u32, 8]
        .iter()
        .map(|&t| {
            let cmp = AikidoSystem::new().compare_spec(&spec.clone().with_threads(t));
            (cmp.full_slowdown(), cmp.aikido_slowdown())
        })
        .collect();
    let (full2, aikido2) = slowdowns[0];
    let (full8, aikido8) = slowdowns[1];
    assert!(
        full8 > full2,
        "full overhead must grow with threads ({full2:.1} -> {full8:.1})"
    );
    assert!(aikido8 > aikido2, "aikido overhead must grow with threads");
    // Aikido wins at 2 threads (Table 1) …
    assert!(aikido2 < full2);
    // … and its relative advantage must not grow at 8 threads.
    assert!(full8 / aikido8 <= full2 / aikido2 + 0.25);
}

#[test]
fn native_mode_is_always_the_cheapest() {
    for name in ["freqmine", "vips"] {
        let spec = WorkloadSpec::parsec(name)
            .unwrap()
            .scaled(0.03)
            .with_threads(4);
        let cmp = AikidoSystem::new().compare_spec(&spec);
        assert!(cmp.native.cycles < cmp.aikido.cycles);
        assert!(cmp.native.cycles < cmp.full.cycles);
        assert_eq!(
            cmp.native.counts.mem_accesses,
            cmp.aikido.counts.mem_accesses
        );
        assert_eq!(cmp.native.counts.mem_accesses, cmp.full.counts.mem_accesses);
    }
}

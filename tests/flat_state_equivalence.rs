//! Property tests pinning the flat, index-addressed hot-path storage to the
//! semantics of the map-based structures it replaced.
//!
//! PR 2 rebuilt the per-access data path (shadow page tables, protection
//! tables, shadow metadata, page states) on `ChunkMap` — a fixed directory of
//! flat leaf arrays — instead of `BTreeMap`/`HashMap`. These tests drive the
//! new structures and simple map-based models through identical random
//! operation sequences and require observational equivalence, and they pin
//! the end-to-end `touch` behaviour (outcomes *and* `Charges`) of two
//! identically-driven hypervisors against each other across a seeded
//! workload-like access pattern.

use std::collections::BTreeMap;

use aikido::shadow::ShadowStore;
use aikido::types::{AccessKind, Addr, ChunkMap, Prot, ThreadId, Vpn};
use aikido::vm::{AikidoVm, Hypercall, ShadowPageTable, ShadowPte, ThreadProtTable, VmConfig};
use proptest::prelude::*;

/// Keys spanning the realistic extremes: dense low pages, application pages,
/// metadata/mirror areas and the fake-fault area.
fn arb_key() -> impl Strategy<Value = u64> {
    (
        prop::sample::select(vec![
            0u64,
            0x400,
            0x10_0000,
            0x5000_0000,
            0x6_0000_0000,
            0x7_ffff_0000,
        ]),
        0u64..1024,
    )
        .prop_map(|(base, off)| base + off)
}

/// One `set`/`clear`/`get` step against a keyed table.
#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u8),
    Remove(u64),
    Get(u64),
}

fn arb_ops(len: usize) -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        (0u8..3, arb_key(), any::<u64>()).prop_map(|(kind, key, val)| match kind {
            0 => MapOp::Insert(key, (val % 251) as u8),
            1 => MapOp::Remove(key),
            _ => MapOp::Get(key),
        }),
        0..len,
    )
}

fn arb_prot() -> impl Strategy<Value = Prot> {
    prop::sample::select(vec![Prot::NONE, Prot::R_USER, Prot::RW_USER])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `ChunkMap` is observationally equivalent to `BTreeMap` under random
    /// insert/remove/get sequences, including length and sorted iteration.
    #[test]
    fn chunkmap_matches_btreemap(ops in arb_ops(200)) {
        let mut flat: ChunkMap<u8> = ChunkMap::new();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(flat.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(flat.remove(k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(flat.get(k), model.get(&k));
                }
            }
            prop_assert_eq!(flat.len(), model.len());
        }
        let flat_items: Vec<(u64, u8)> = flat.iter().map(|(k, &v)| (k, v)).collect();
        let model_items: Vec<(u64, u8)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(flat_items, model_items);
    }

    /// The flat per-thread protection table behaves exactly like a
    /// `BTreeMap<Vpn, Prot>` model under set/clear/get/effective sequences.
    #[test]
    fn prot_table_matches_map_model(
        steps in prop::collection::vec((arb_key(), arb_prot(), arb_prot(), 0u8..3), 0..150)
    ) {
        let mut table = ThreadProtTable::new();
        let mut model: BTreeMap<u64, Prot> = BTreeMap::new();
        for (raw, prot, guest, kind) in steps {
            let page = Vpn::new(raw);
            match kind {
                0 => {
                    table.set(page, prot);
                    model.insert(raw, prot);
                }
                1 => {
                    table.clear(page);
                    model.remove(&raw);
                }
                _ => {}
            }
            prop_assert_eq!(table.get(page), model.get(&raw).copied());
            let expect = match model.get(&raw) {
                Some(r) => guest.intersect(*r),
                None => guest,
            };
            prop_assert_eq!(table.effective(page, guest), expect);
            prop_assert_eq!(table.restricts(page, guest), expect != guest);
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// The flat shadow page table matches a `BTreeMap<Vpn, ShadowPte>` model
    /// under install/invalidate/set_prot/lookup sequences.
    #[test]
    fn shadow_pt_matches_map_model(
        steps in prop::collection::vec((arb_key(), 0u64..64, arb_prot(), 0u8..4), 0..150)
    ) {
        let mut table = ShadowPageTable::new();
        let mut model: BTreeMap<u64, ShadowPte> = BTreeMap::new();
        for (raw, frame, prot, kind) in steps {
            let page = Vpn::new(raw);
            let pte = ShadowPte {
                frame: aikido::vm::FrameId::new(frame),
                prot,
            };
            match kind {
                0 => {
                    table.install(page, pte);
                    model.insert(raw, pte);
                }
                1 => {
                    prop_assert_eq!(table.invalidate(page), model.remove(&raw));
                }
                2 => {
                    let had = model.get_mut(&raw).map(|e| e.prot = prot).is_some();
                    prop_assert_eq!(table.set_prot(page, prot), had);
                }
                _ => {}
            }
            prop_assert_eq!(table.lookup(page), model.get(&raw).copied());
            prop_assert_eq!(table.len(), model.len());
        }
        let flat: Vec<(u64, ShadowPte)> = table.iter().map(|(p, e)| (p.raw(), e)).collect();
        let modeled: Vec<(u64, ShadowPte)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(flat, modeled);
    }

    /// The chunked `ShadowStore` slab matches a `BTreeMap<u64, T>` keyed by
    /// block index, at several granularities.
    #[test]
    fn shadow_store_matches_map_model(
        granularity in prop::sample::select(vec![1u64, 8, 64]),
        ops in arb_ops(150),
    ) {
        let mut store: ShadowStore<u8> = ShadowStore::new(granularity);
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let addr = Addr::new(k);
                    prop_assert_eq!(
                        store.insert(addr, v),
                        model.insert(k / granularity, v)
                    );
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(store.remove(Addr::new(k)), model.remove(&(k / granularity)));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(store.get(Addr::new(k)), model.get(&(k / granularity)));
                    // `get_or_default` must agree with the model's entry API.
                    let expected = *model.entry(k / granularity).or_default();
                    prop_assert_eq!(*store.get_or_default(Addr::new(k)), expected);
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
    }

    /// Two hypervisors driven through an identical seeded sequence of
    /// protection changes and accesses produce byte-identical `Touch` results
    /// — outcome and `Charges` — and identical statistics. This pins the
    /// TLB/flat-table fast path to the architectural (slow-path) behaviour:
    /// any caching bug shows up as a diverging outcome or charge.
    #[test]
    fn touch_outcomes_and_charges_are_deterministic(seed in any::<u64>()) {
        let build = || {
            let mut vm = AikidoVm::new(VmConfig::default());
            for t in 0..3 {
                vm.register_thread(ThreadId::new(t)).unwrap();
            }
            vm.mmap(Addr::new(0x40_0000), 8, Prot::RW_USER).unwrap();
            vm.mmap(Addr::new(0x80_0000), 4, Prot::R_USER).unwrap();
            vm
        };
        let mut a = build();
        let mut b = build();

        // Deterministic pseudo-random op stream (SplitMix64).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };

        for _ in 0..400 {
            let r = next();
            let thread = ThreadId::new((r % 3) as u32);
            let region = if r & 8 == 0 { 0x40_0000u64 } else { 0x80_0000 };
            let pages = if region == 0x40_0000 { 8 } else { 4 };
            let addr = Addr::new(region + (next() % (pages * 4096)));
            match r % 7 {
                0 => {
                    let prot = if r & 16 == 0 { Prot::NONE } else { Prot::R_USER };
                    a.hypercall(Hypercall::ProtectRange {
                        thread, base: addr.page().base(), pages: 1, prot,
                    }).unwrap();
                    b.hypercall(Hypercall::ProtectRange {
                        thread, base: addr.page().base(), pages: 1, prot,
                    }).unwrap();
                }
                1 => {
                    a.hypercall(Hypercall::UnprotectRange {
                        thread, base: addr.page().base(), pages: 1,
                    }).unwrap();
                    b.hypercall(Hypercall::UnprotectRange {
                        thread, base: addr.page().base(), pages: 1,
                    }).unwrap();
                }
                _ => {
                    let kind = if r & 32 == 0 { AccessKind::Read } else { AccessKind::Write };
                    let ta = a.touch(thread, addr, kind).unwrap();
                    let tb = b.touch(thread, addr, kind).unwrap();
                    prop_assert_eq!(ta, tb);
                }
            }
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.temp_unprotected_pages(), b.temp_unprotected_pages());
    }
}

//! Service ↔ direct-run equivalence and admission behaviour, end to end.
//!
//! The serving layer must be a transparent multiplexer: a report delivered
//! through admit → place → run → aggregate is byte-identical to running the
//! same `RunRequest` directly on a `Simulator`, and the whole `FleetReport`
//! is a deterministic function of the request sequence. Budget refusals are
//! structured errors, never panics. All tests use the deterministic
//! [`VirtualClock`] so no wall-clock value can leak into assertions.

use aikido::prelude::*;
use aikido_serve::{AdmitError, RunRequest, ServiceConfig, SimService, TenantBudget, VirtualClock};

fn small_config() -> ServiceConfig {
    ServiceConfig {
        shards: 4,
        fleet_workers: 3,
        queue_capacity: 64,
        shard_capacity: 16,
        default_budget: TenantBudget::default(),
    }
}

/// A mixed request batch from three tenants.
fn requests() -> Vec<RunRequest> {
    let presets = ["blackscholes", "swaptions", "canneal"];
    let tenants = ["acme", "globex", "initech"];
    let modes = [Mode::Native, Mode::FullInstrumentation, Mode::Aikido];
    (0..12)
        .map(|i| {
            let spec = WorkloadSpec::parsec(presets[i % presets.len()]).unwrap();
            let config = SimConfig::default()
                .with_scale(0.02)
                .with_workers(1 + i % 2);
            RunRequest::new(tenants[i % tenants.len()], spec, modes[i % modes.len()])
                .with_config(config)
        })
        .collect()
}

#[test]
fn delivered_reports_are_byte_identical_to_direct_runs() {
    let clock = VirtualClock::new();
    let mut service = SimService::with_clock(small_config(), Box::new(clock.clone())).unwrap();
    let batch = requests();
    for request in &batch {
        clock.advance(10);
        service.submit(request.clone()).expect("within budget");
    }
    let fleet = service.drain();

    assert_eq!(fleet.runs.len(), batch.len());
    for (outcome, request) in fleet.runs.iter().zip(&batch) {
        let delivered = outcome.report.as_ref().expect("run succeeded");
        let direct = Simulator::from_config(request.config.clone())
            .unwrap()
            .try_run(&Workload::generate(&request.effective_spec()), request.mode)
            .unwrap();
        assert_eq!(
            serde_json::to_string(delivered).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "run {} ({}) must match its direct run byte for byte",
            outcome.run_id,
            outcome.workload
        );
    }
}

#[test]
fn the_fleet_report_is_a_deterministic_function_of_the_request_sequence() {
    let run = || {
        let clock = VirtualClock::new();
        let mut service = SimService::with_clock(small_config(), Box::new(clock.clone())).unwrap();
        for request in requests() {
            clock.advance(7);
            service.submit(request).expect("within budget");
        }
        serde_json::to_string(&service.drain()).unwrap()
    };
    assert_eq!(
        run(),
        run(),
        "two services fed the same sequence must serialize identical FleetReports"
    );
}

#[test]
fn budget_refusals_are_structured_and_the_fleet_still_drains() {
    let clock = VirtualClock::new();
    let mut service = SimService::with_clock(small_config(), Box::new(clock.clone())).unwrap();
    service.set_budget("umbrella", TenantBudget::default().with_access_quota(0));

    let paying = WorkloadSpec::parsec("blackscholes").unwrap();
    let config = SimConfig::default().with_scale(0.02);
    service
        .submit(RunRequest::new("acme", paying.clone(), Mode::Aikido).with_config(config.clone()))
        .expect("paying tenant admitted");

    clock.set(99);
    let refused = service
        .submit(RunRequest::new("umbrella", paying, Mode::Native).with_config(config))
        .expect_err("zero quota must refuse");
    match &refused {
        AdmitError::QuotaExhausted { tenant, quota, .. } => {
            assert_eq!(tenant, "umbrella");
            assert_eq!(*quota, 0);
        }
        other => panic!("expected QuotaExhausted, got {other:?}"),
    }
    assert_eq!(refused.kind(), "quota_exhausted");

    let fleet = service.drain();
    assert_eq!(fleet.runs.len(), 1, "the admitted run still executes");
    assert!(fleet.failures().next().is_none());
    assert_eq!(fleet.rejections.len(), 1);
    assert_eq!(fleet.rejections[0].tenant, "umbrella");
    assert_eq!(
        fleet.rejections[0].at, 99,
        "rejection stamped by the virtual clock"
    );
}

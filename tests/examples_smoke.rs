//! Smoke tests that the runnable examples actually run — and that their
//! output is byte-identical to the checked-in golden transcripts.
//!
//! The simulation is a pure function of the workload spec (fixed seeds), so
//! any drift in an example's stdout means observable behaviour changed:
//! different counts, cycles or race reports. Perf-focused PRs must keep these
//! transcripts bit-for-bit stable; refresh a golden file only when a change
//! is *meant* to alter results (and say so in the PR).

use std::path::Path;
use std::process::Command;

/// Runs one example through cargo, asserts a zero exit status and compares
/// stdout against `tests/golden/<name>.stdout`.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        // Golden transcripts are captured at each example's built-in default
        // scale; don't let an inherited AIKIDO_SCALE (e.g. from a CI lane)
        // shift scale-aware examples off their transcript.
        .env_remove("AIKIDO_SCALE")
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );

    let golden_path = manifest_dir
        .join("tests/golden")
        .join(format!("{name}.stdout"));
    let golden = std::fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden transcript {}: {e}", golden_path.display()));
    assert!(
        output.stdout == golden,
        "example `{name}` stdout drifted from its golden transcript \
         (tests/golden/{name}.stdout).\n--- got ---\n{}\n--- expected ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&golden),
    );
}

#[test]
fn quickstart_example_runs() {
    run_example("quickstart");
}

#[test]
fn find_races_example_runs() {
    run_example("find_races");
}

#[test]
fn first_access_window_example_runs() {
    run_example("first_access_window");
}

#[test]
fn sharing_profiler_example_runs() {
    run_example("sharing_profiler");
}

#[test]
fn static_report_dump_example_runs() {
    run_example("static_report_dump");
}

#[test]
fn snapshot_roundtrip_example_runs() {
    run_example("snapshot_roundtrip");
}

//! Smoke tests that the runnable examples actually run: `cargo run --example`
//! must exit successfully for the examples the README points users at, so
//! example rot is caught by the tier-1 test suite instead of by users.

use std::path::Path;
use std::process::Command;

/// Runs one example through cargo and asserts a zero exit status.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_example_runs() {
    run_example("quickstart");
}

#[test]
fn find_races_example_runs() {
    run_example("find_races");
}

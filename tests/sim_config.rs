//! `SimConfig` is the single front door for simulator configuration: the
//! builder chain, `Simulator::from_config`, and the JSON wire form must all
//! describe the same machine.

use aikido::prelude::*;

#[test]
fn from_config_matches_the_equivalent_with_chain_byte_for_byte() {
    let spec = WorkloadSpec::parsec("streamcluster").unwrap().scaled(0.02);
    let workload = Workload::generate(&spec);

    let config = SimConfig::default()
        .with_quantum(5)
        .with_workers(2)
        .with_batched_kernels(false)
        .with_inline_tlb(false)
        .with_static_precheck(false)
        .with_packed_words(false)
        .with_checkpoint_every(Some(400));
    let via_config = Simulator::from_config(config).unwrap();
    let via_chain = Simulator::default()
        .with_quantum(5)
        .with_workers(2)
        .with_batched_kernels(false)
        .with_inline_tlb(false)
        .with_static_precheck(false)
        .with_packed_words(false)
        .with_checkpoint_every(Some(400));

    assert_eq!(via_config.config(), via_chain.config());
    for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
        let a = via_config.run(&workload, mode);
        let b = via_chain.run(&workload, mode);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{mode:?}: the two construction paths must be indistinguishable"
        );
    }
}

#[test]
fn invalid_configs_are_rejected_with_the_offending_field() {
    for (config, field) in [
        (SimConfig::default().with_quantum(0), "quantum"),
        (SimConfig::default().with_workers(0), "workers"),
        (
            SimConfig::default().with_checkpoint_every(Some(0)),
            "checkpoint_every",
        ),
        (SimConfig::default().with_scale(0.0), "scale"),
        (SimConfig::default().with_scale(f64::NAN), "scale"),
    ] {
        let err = Simulator::from_config(config).expect_err("must be rejected");
        assert_eq!(err.field, field);
        assert!(
            err.to_string()
                .starts_with(&format!("invalid SimConfig.{field}:")),
            "structured message names the field: {err}"
        );
    }
}

#[test]
fn the_json_wire_form_round_trips() {
    let config = SimConfig::default()
        .with_quantum(12)
        .with_workers(3)
        .with_inline_tlb(false)
        .with_checkpoint_every(Some(250))
        .with_scale(0.25);
    let text = serde_json::to_string(&config).unwrap();
    let value = serde_json::from_str(&text).unwrap();
    let back = SimConfig::from_json_value(&value).unwrap();
    assert_eq!(back, config);

    // Absent fields default; unknown keys are an error, not silently dropped.
    let sparse = serde_json::from_str(r#"{"workers": 2}"#).unwrap();
    let parsed = SimConfig::from_json_value(&sparse).unwrap();
    assert_eq!(parsed, SimConfig::default().with_workers(2));
    let junk = serde_json::from_str(r#"{"wokers": 2}"#).unwrap();
    assert!(SimConfig::from_json_value(&junk).is_err());
}

//! Property tests for the simulator's inline-check tables (the per-thread
//! direct-mapped "TLBs" modelling the code Aikido emits in front of every
//! access, Figure 4).
//!
//! The tables are direct mapped with [`Simulator::INLINE_TLB_ENTRIES`]
//! entries, so two pages exactly that many apart collide in the same slot and
//! evict each other. The soundness claim is that the tables only ever skip
//! *provably free* VM touches — so running with the tables disabled (every
//! access goes to `vm.touch`) must produce byte-identical reports, aliasing
//! or not. These tests construct workloads whose private areas are wider
//! than the table (guaranteeing same-slot collisions under random
//! addressing), drive both configurations, and require full `RunReport`
//! equality; the batched and scalar kernels are both exercised.

use aikido::{Mode, RunReport, Simulator, Workload, WorkloadSpec};
use proptest::prelude::*;

/// A spec whose per-thread private area spans more pages than the
/// inline-check table has entries, so pages `INLINE_TLB_ENTRIES` apart are
/// hit through the same direct-mapped slot.
fn aliasing_spec(seed: u64, threads: u32, extra_pages: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("tlb-alias-{seed}"),
        threads,
        mem_accesses_per_thread: 1_500,
        private_pages_per_thread: Simulator::INLINE_TLB_ENTRIES as u64 + extra_pages,
        ..WorkloadSpec::default()
    }
    .with_seed(seed)
}

fn run(workload: &Workload, mode: Mode, inline_tlb: bool, batched: bool) -> RunReport {
    Simulator::default()
        .with_inline_tlb(inline_tlb)
        .with_batched_kernels(batched)
        .run(workload, mode)
}

#[test]
fn colliding_pages_share_a_direct_mapped_slot() {
    // The premise of the aliasing tests: addresses one table-span apart
    // collide. (A pure arithmetic fact, pinned so a future table resize
    // keeps the workloads below actually aliasing.)
    let entries = Simulator::INLINE_TLB_ENTRIES;
    let slot = |page: u64| (page as usize) & (entries - 1);
    assert_eq!(slot(7), slot(7 + entries as u64));
    assert_ne!(slot(7), slot(8));
}

#[test]
fn aliased_private_areas_report_identically_with_and_without_the_tlb() {
    let w = Workload::generate(&aliasing_spec(0xA11A5, 4, 1));
    for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
        let with_tlb = run(&w, mode, true, true);
        let without = run(&w, mode, false, true);
        assert_eq!(with_tlb, without, "{mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeds, thread counts and area widths: every (thread, page,
    /// kind) stream — including ones that thrash a single slot from several
    /// threads — must be invisible in the report.
    #[test]
    fn tlb_disabled_reference_is_byte_identical(
        seed in 0u64..1_000_000,
        threads in 2u32..6,
        extra in prop::sample::select(vec![0u64, 1, 3, 64]),
    ) {
        let w = Workload::generate(&aliasing_spec(seed, threads, extra));
        let with_tlb = run(&w, Mode::Aikido, true, true);
        let without = run(&w, Mode::Aikido, false, true);
        prop_assert_eq!(&with_tlb, &without);
        // The scalar reference loop must agree under aliasing too, with the
        // tables on and off — four corners, one report.
        let scalar = run(&w, Mode::Aikido, true, false);
        let scalar_without = run(&w, Mode::Aikido, false, false);
        prop_assert_eq!(&with_tlb, &scalar);
        prop_assert_eq!(&with_tlb, &scalar_without);
    }
}

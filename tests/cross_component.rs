//! Cross-crate integration tests that exercise the substrates together
//! without going through the simulator: the hypervisor, the sharing
//! detector, the DBI engine and the shadow memory must compose exactly as
//! the paper describes.

use aikido::dbi::{DbiEngine, Program, StaticInstr};
use aikido::sharing::{AikidoSd, PageState};
use aikido::types::{AccessKind, Addr, AddrMode, InstrId, Prot, ThreadId};
use aikido::vm::{AikidoVm, TouchOutcome, VmConfig};

struct Stack {
    vm: AikidoVm,
    sd: AikidoSd,
    engine: DbiEngine,
    instr: InstrId,
}

fn build_stack(threads: u32, base: Addr, pages: u64) -> Stack {
    let mut vm = AikidoVm::new(VmConfig::default());
    for t in 0..threads {
        vm.register_thread(ThreadId::new(t)).unwrap();
    }
    vm.mmap(base, pages, Prot::RW_USER).unwrap();

    let mut program = Program::new();
    let block = program.add_block(vec![StaticInstr::Mem {
        kind: AccessKind::Write,
        mode: AddrMode::Indirect,
    }]);
    let engine = DbiEngine::new(program);
    let instr = InstrId::new(block, 0);

    let mut sd = AikidoSd::new();
    sd.attach_region(&mut vm, base, pages).unwrap();
    Stack {
        vm,
        sd,
        engine,
        instr,
    }
}

/// Drives one access through the protection machinery until it completes.
fn access(stack: &mut Stack, thread: ThreadId, addr: Addr, kind: AccessKind) -> u32 {
    let mut faults = 0;
    for _ in 0..4 {
        match stack.vm.touch(thread, addr, kind).unwrap().outcome {
            TouchOutcome::Ok => return faults,
            TouchOutcome::Fatal(segv) => panic!("unexpected fatal fault: {segv}"),
            TouchOutcome::AikidoFault(fault) => {
                faults += 1;
                let disposition = stack
                    .sd
                    .handle_fault(&mut stack.vm, &mut stack.engine, &fault, stack.instr)
                    .unwrap();
                if disposition.instruments_instruction() {
                    let mirror = stack.sd.mirror_addr(addr).unwrap();
                    assert!(matches!(
                        stack.vm.touch(thread, mirror, kind).unwrap().outcome,
                        TouchOutcome::Ok
                    ));
                    return faults;
                }
            }
        }
    }
    panic!("access did not converge");
}

#[test]
fn full_lifecycle_of_a_page_from_unused_to_shared() {
    let base = Addr::new(0x70_0000);
    let mut stack = build_stack(3, base, 2);
    let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));

    assert_eq!(stack.sd.page_state(base.page()), PageState::Unused);
    assert_eq!(access(&mut stack, t0, base, AccessKind::Write), 1);
    assert_eq!(stack.sd.page_state(base.page()), PageState::Private(t0));
    assert_eq!(access(&mut stack, t0, base.offset(64), AccessKind::Read), 0);

    assert_eq!(access(&mut stack, t1, base.offset(8), AccessKind::Write), 1);
    assert_eq!(stack.sd.page_state(base.page()), PageState::Shared);
    assert!(stack.engine.is_instrumented(stack.instr));

    // A third thread's access also faults once (new instruction discovery is
    // per-instruction; here the same instruction is already instrumented, so
    // the access simply goes through the mirror).
    let faults = access(&mut stack, t2, base.offset(16), AccessKind::Read);
    assert!(faults <= 1);
    // The page never leaves the shared state.
    assert_eq!(stack.sd.page_state(base.page()), PageState::Shared);
}

#[test]
fn mirror_pages_alias_the_same_machine_frames_across_the_stack() {
    let base = Addr::new(0x80_0000);
    let mut stack = build_stack(2, base, 4);
    let addr = base.offset(3 * 4096 + 24);
    let mirror = stack.sd.mirror_addr(addr).unwrap();
    let f_app = stack.vm.resolve_frame(addr).unwrap();
    let f_mirror = stack.vm.resolve_frame(mirror).unwrap();
    assert_eq!(f_app, f_mirror, "mirror must alias the application frame");
    // Metadata lives elsewhere (its own shadow area, its own frames).
    let metadata = stack.sd.metadata_addr(addr).unwrap();
    assert_ne!(metadata.page(), mirror.page());
}

#[test]
fn kernel_emulation_path_composes_with_sharing_detection() {
    let base = Addr::new(0x90_0000);
    let mut stack = build_stack(2, base, 1);
    let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));

    // Make the page shared so it is globally protected.
    access(&mut stack, t0, base, AccessKind::Write);
    access(&mut stack, t1, base, AccessKind::Write);
    assert_eq!(stack.sd.page_state(base.page()), PageState::Shared);

    // The guest kernel now copies a syscall argument into the protected page:
    // the hypervisor emulates it and temporarily unprotects with the user bit
    // cleared.
    assert!(stack.vm.kernel_touch(t0, base, AccessKind::Write).unwrap());
    assert_eq!(stack.vm.temp_unprotected_pages(), vec![base.page()]);

    // The next userspace access restores protections and faults as an Aikido
    // fault again — the sharing state is unchanged.
    let faults = access(&mut stack, t0, base.offset(8), AccessKind::Read);
    assert_eq!(faults, 1);
    assert_eq!(stack.sd.page_state(base.page()), PageState::Shared);
    assert!(stack.vm.temp_unprotected_pages().is_empty());
}

#[test]
fn per_thread_protection_is_invisible_to_other_threads() {
    let base = Addr::new(0xa0_0000);
    let mut stack = build_stack(4, base, 4);
    // Each thread claims its own page; nobody else ever faults on it.
    for i in 0..4u32 {
        let t = ThreadId::new(i);
        let addr = base.offset(i as u64 * 4096);
        assert_eq!(access(&mut stack, t, addr, AccessKind::Write), 1);
        assert_eq!(
            access(&mut stack, t, addr.offset(128), AccessKind::Write),
            0
        );
    }
    let (private, shared) = stack.sd.page_counts();
    assert_eq!((private, shared), (4, 0));
    assert_eq!(stack.engine.instrumented_instrs().len(), 0);
    assert_eq!(stack.vm.stats().aikido_faults_delivered, 4);
}

//! The packed metadata plane's end-to-end equivalence oracle.
//!
//! FastTrack's hot-path storage is one packed 64-bit shadow word per block
//! (PR 5); the enum-based `ShadowStore` representation is retained behind
//! `FastTrack::with_packed_words(false)` exactly the way the scalar block
//! loop is retained behind `Simulator::with_batched_kernels(false)`. This
//! suite drives both representations through the full pipeline — all six
//! benchmarks, every execution mode — and requires byte-identical results:
//! same `RunReport` (cycles included, so the per-access cost stream matched
//! access by access), same detector statistics, same races, and the same
//! reconstructed per-block metadata, serialized and compared as JSON.
//!
//! The CI `packed-equivalence` lane runs this file in release mode at
//! `AIKIDO_SCALE=0.05`, the same scale as the throughput lanes.

use aikido::fasttrack::FastTrack;
use aikido::{Mode, RunReport, Simulator, Workload, WorkloadSpec};

/// The six PARSEC presets the repo's suites exercise end to end.
const BENCHMARKS: [&str; 6] = [
    "raytrace",
    "blackscholes",
    "vips",
    "fluidanimate",
    "swaptions",
    "canneal",
];

/// Workload scale: `AIKIDO_SCALE` when set (the CI release lane runs 0.05),
/// a fast default otherwise.
fn scale() -> f64 {
    std::env::var("AIKIDO_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.02)
}

fn run_with(workload: &Workload, mode: Mode, packed: bool) -> (RunReport, FastTrack) {
    let mut ft = FastTrack::new().with_packed_words(packed);
    let report = Simulator::default().run_with_analysis(workload, mode, &mut ft);
    (report, ft)
}

fn assert_equivalent(workload: &Workload, mode: Mode, context: &str) {
    let (packed_report, packed) = run_with(workload, mode, true);
    let (reference_report, reference) = run_with(workload, mode, false);
    assert_eq!(
        packed_report, reference_report,
        "report mismatch ({context})"
    );
    assert_eq!(
        packed.stats(),
        reference.stats(),
        "stats mismatch ({context})"
    );
    assert_eq!(
        packed.races(),
        reference.races(),
        "races mismatch ({context})"
    );
    let packed_states = packed.var_states();
    let reference_states = reference.var_states();
    assert_eq!(
        packed_states, reference_states,
        "shadow states mismatch ({context})"
    );
    // Serialized-byte equality of the reconstructed metadata plane.
    let packed_json = serde_json::to_string(&packed_states).expect("states serialize");
    let reference_json = serde_json::to_string(&reference_states).expect("states serialize");
    assert_eq!(
        packed_json, reference_json,
        "serialized states differ ({context})"
    );
}

#[test]
fn packed_words_match_the_reference_store_on_all_six_benchmarks() {
    let scale = scale();
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("benchmark list contains only PARSEC presets")
            .scaled(scale);
        let workload = Workload::generate(&spec);
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            assert_equivalent(&workload, mode, &format!("{name}, {mode:?}"));
        }
    }
}

#[test]
fn packed_words_match_the_reference_store_on_racy_and_barrier_workloads() {
    use aikido::workloads::racy_workload;
    let racy = Workload::generate(&racy_workload(4));
    for mode in [Mode::FullInstrumentation, Mode::Aikido] {
        assert_equivalent(&racy, mode, &format!("racy, {mode:?}"));
    }
    let mut spec = WorkloadSpec::parsec("bodytrack").unwrap().scaled(0.02);
    spec.barrier_every = 10;
    let barriers = Workload::generate(&spec);
    assert_equivalent(&barriers, Mode::Aikido, "bodytrack barriers");
}

#[test]
fn packed_words_match_the_reference_store_under_spill_pressure() {
    // The adversarial spill-pressure scenario: alternating-thread shared
    // reads in one-access runs with frequent barrier epochs, maximizing
    // word→arena traffic and ownership-hint churn. Thread counts straddle
    // the spill slot's inline-lane budget: 4 (inside), 8 (exactly full) and
    // 9 (one thread past the lanes, forcing the boxed overflow clock).
    use aikido::workloads::spill_pressure_workload;
    for threads in [4, 8, 9] {
        let workload = Workload::generate(&spill_pressure_workload(threads));
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            assert_equivalent(
                &workload,
                mode,
                &format!("spill_pressure x{threads}, {mode:?}"),
            );
        }
    }
}

#[test]
fn the_default_pipeline_detector_runs_packed() {
    // `Simulator::run` constructs its own FastTrack; the packed plane being
    // its default is what the throughput trajectory measures.
    assert!(FastTrack::new().packed_words());
    assert!(!FastTrack::new().with_packed_words(false).packed_words());
}

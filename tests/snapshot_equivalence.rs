//! Crash-recovery equivalence: a run paused at a checkpoint, serialized,
//! restored from raw bytes and driven to completion must produce a report
//! **byte-identical** to the uninterrupted run — for every benchmark, every
//! execution mode, every worker count, and arbitrarily chained checkpoints.
//!
//! This is the tentpole invariant of the snapshot plane (PR 7): the report
//! derives from every layer of simulation state (scheduler clocks, FastTrack
//! vector clocks, page protections, sharing classifications, code-cache
//! contents), so byte equality here proves the serialization captured all of
//! it and the restore rebuilt all of it.

use aikido::{CheckpointOutcome, Mode, RunReport, Simulator, Snapshot, Workload, WorkloadSpec};

const BENCHMARKS: [&str; 6] = [
    "raytrace",
    "blackscholes",
    "vips",
    "fluidanimate",
    "swaptions",
    "canneal",
];

const MODES: [Mode; 3] = [Mode::Native, Mode::FullInstrumentation, Mode::Aikido];

fn small(name: &str) -> Workload {
    let spec = WorkloadSpec::parsec(name)
        .expect("known PARSEC preset")
        .scaled(0.02)
        .with_threads(4);
    Workload::generate(&spec)
}

/// Checkpoints `w` at `after_blocks` and returns the serialized image; the
/// caller decides how to restore it. Panics if the run completes first.
fn snapshot_at(sim: &Simulator, w: &Workload, mode: Mode, after_blocks: u64) -> Vec<u8> {
    match sim.checkpoint(w, mode, after_blocks).expect("checkpoint") {
        CheckpointOutcome::Paused(snapshot) => snapshot.into_bytes(),
        CheckpointOutcome::Completed(_) => {
            panic!("workload completed before the {after_blocks}-block checkpoint")
        }
    }
}

/// Restores from raw bytes (the full integrity validation path a crash
/// recovery exercises) and resumes to completion.
fn resume_from_bytes(sim: &Simulator, w: &Workload, bytes: Vec<u8>) -> RunReport {
    let snapshot = Snapshot::from_bytes(bytes).expect("image validates");
    sim.resume(w, &snapshot).expect("resume")
}

#[test]
fn resume_is_byte_identical_across_benchmarks_and_modes() {
    for name in BENCHMARKS {
        let w = small(name);
        for mode in MODES {
            let sim = Simulator::default();
            let uninterrupted = sim.run(&w, mode);
            let midpoint = uninterrupted.counts.block_execs / 2;
            let bytes = snapshot_at(&sim, &w, mode, midpoint);
            let resumed = resume_from_bytes(&sim, &w, bytes);
            assert_eq!(resumed, uninterrupted, "{name} {mode:?}");
        }
    }
}

#[test]
fn resume_is_byte_identical_across_worker_counts() {
    // Checkpoint under one worker configuration, resume under another: the
    // snapshot must be worker-agnostic in both directions, because the
    // parallel epoch engine is proven byte-identical to the sequential path.
    let w = small("swaptions");
    for mode in MODES {
        let uninterrupted = Simulator::default().run(&w, mode);
        let midpoint = uninterrupted.counts.block_execs / 2;
        for checkpoint_workers in [1, 4] {
            let bytes = snapshot_at(
                &Simulator::default().with_workers(checkpoint_workers),
                &w,
                mode,
                midpoint,
            );
            for resume_workers in [1, 2, 8] {
                let resumed = resume_from_bytes(
                    &Simulator::default().with_workers(resume_workers),
                    &w,
                    bytes.clone(),
                );
                assert_eq!(
                    resumed, uninterrupted,
                    "{mode:?} checkpoint@{checkpoint_workers}w resume@{resume_workers}w"
                );
            }
        }
    }
}

#[test]
fn sharded_and_sequential_snapshots_cross_resume_byte_identically() {
    // PR 10: the sharded analysis plane merges into its canonical detector
    // before every pause, so the FTRK section a sharded-4-worker checkpoint
    // writes is byte-identical to the sequential one — and `sharded_analysis`
    // is deliberately not part of the snapshot identity. Both crossings must
    // therefore reproduce the uninterrupted report: checkpoint@sharded-4w →
    // resume@sequential, and checkpoint@sequential → resume@sharded-4w. The
    // images themselves must match byte for byte, too.
    let sharded_4w = || {
        Simulator::default()
            .with_workers(4)
            .with_sharded_analysis(true)
    };
    let sequential = || Simulator::default().with_workers(1);
    let w = small("fluidanimate");
    for mode in [Mode::FullInstrumentation, Mode::Aikido] {
        let uninterrupted = sequential().run(&w, mode);
        let midpoint = uninterrupted.counts.block_execs / 2;

        let sharded_bytes = snapshot_at(&sharded_4w(), &w, mode, midpoint);
        let sequential_bytes = snapshot_at(&sequential(), &w, mode, midpoint);
        assert_eq!(
            sharded_bytes, sequential_bytes,
            "{mode:?}: sharded and sequential checkpoints diverge on disk"
        );

        let resumed = resume_from_bytes(&sequential(), &w, sharded_bytes);
        assert_eq!(resumed, uninterrupted, "{mode:?} sharded-4w → sequential");

        let resumed = resume_from_bytes(&sharded_4w(), &w, sequential_bytes);
        assert_eq!(resumed, uninterrupted, "{mode:?} sequential → sharded-4w");
    }
}

#[test]
fn chained_checkpoints_converge_on_the_uninterrupted_report() {
    // Pause, serialize, restore, run a quarter, pause again — state that
    // survives one round trip but decays over several would escape the
    // single-checkpoint tests.
    for name in ["vips", "canneal"] {
        let w = small(name);
        let sim = Simulator::default();
        let uninterrupted = sim.run(&w, Mode::Aikido);
        let total = uninterrupted.counts.block_execs;
        let step = (total / 4).max(1);

        let mut target = step;
        let mut outcome = sim
            .checkpoint(&w, Mode::Aikido, target)
            .expect("checkpoint");
        let mut pauses = 0;
        let report = loop {
            match outcome {
                CheckpointOutcome::Completed(report) => break *report,
                CheckpointOutcome::Paused(snapshot) => {
                    pauses += 1;
                    let snapshot =
                        Snapshot::from_bytes(snapshot.into_bytes()).expect("image validates");
                    target += step;
                    outcome = sim
                        .resume_until(&w, &snapshot, target)
                        .expect("resume_until");
                }
            }
        };
        assert!(
            pauses >= 2,
            "{name}: only {pauses} pauses over {total} blocks"
        );
        assert_eq!(report, uninterrupted, "{name}");
    }
}

#[test]
fn early_and_late_checkpoints_both_round_trip() {
    // The first scheduling round and the last stretch of the run hold very
    // different state shapes (nothing classified yet vs. everything hot).
    let w = small("fluidanimate");
    let sim = Simulator::default();
    let uninterrupted = sim.run(&w, Mode::Aikido);
    let total = uninterrupted.counts.block_execs;
    for target in [1, total.saturating_sub(20)] {
        let bytes = snapshot_at(&sim, &w, Mode::Aikido, target);
        let resumed = resume_from_bytes(&sim, &w, bytes);
        assert_eq!(resumed, uninterrupted, "checkpoint after {target} blocks");
    }
}

#[test]
fn stale_ftrk_section_versions_are_rejected_with_a_structured_error() {
    // PR 9 rebuilt the detector's spill plane (inline epoch lanes +
    // ownership epochs) and bumped the FTRK section to v2; a v1 image must
    // be refused by the version validation, not silently restored into the
    // new plane. Hand-patch a valid image's FTRK header back to v1 and fix
    // its checksum, so only the version check can catch the mismatch.
    use aikido::SimError;

    let w = small("raytrace");
    let sim = Simulator::default();
    let report = sim.run(&w, Mode::Aikido);
    let mut bytes = snapshot_at(&sim, &w, Mode::Aikido, report.counts.block_execs / 2);

    // Walk the container framing — magic(8) + container version(2), then
    // tag(4)/version(2)/length(8)/payload/checksum(8) per section — to the
    // FTRK section.
    let mut at = 10;
    let (start, end) = loop {
        assert!(at + 22 <= bytes.len(), "image ended before an FTRK section");
        let len = u64::from_le_bytes(bytes[at + 6..at + 14].try_into().unwrap()) as usize;
        let end = at + 14 + len + 8;
        if &bytes[at..at + 4] == b"FTRK" {
            break (at, end);
        }
        at = end;
    };
    assert_eq!(
        u16::from_le_bytes(bytes[start + 4..start + 6].try_into().unwrap()),
        2,
        "the detector writes FTRK v2 since the spill-plane rebuild"
    );
    bytes[start + 4..start + 6].copy_from_slice(&1u16.to_le_bytes());
    let checksum = aikido::snapshot::fnv1a(&bytes[start..end - 8]);
    bytes[end - 8..end].copy_from_slice(&checksum.to_le_bytes());

    let snapshot = Snapshot::from_bytes(bytes).expect("checksum-valid image");
    let err = sim
        .resume(&w, &snapshot)
        .expect_err("a v1 FTRK section must not restore");
    let SimError::Snapshot(err) = err else {
        panic!("expected a structured snapshot error, got {err:?}");
    };
    assert_eq!(err.section, "FTRK", "{err}");
    assert_eq!(err.offset, (start + 4) as u64, "{err}");
    assert!(err.reason.contains("version 1"), "{err}");
    assert!(err.reason.contains("expected version 2"), "{err}");
}

#[test]
fn snapshot_images_are_deterministic() {
    // Two checkpoints of the same run at the same block target must produce
    // byte-identical images — the property the CI crash-recovery lane's
    // `cmp` relies on.
    let w = small("blackscholes");
    let sim = Simulator::default();
    let report = sim.run(&w, Mode::Aikido);
    let midpoint = report.counts.block_execs / 2;
    let a = snapshot_at(&sim, &w, Mode::Aikido, midpoint);
    let b = snapshot_at(&sim, &w, Mode::Aikido, midpoint);
    assert_eq!(a, b);
}

//! The parallel epoch engine's determinism oracle.
//!
//! The epoch-parallel scheduler (PR 3) runs block production on a pool of OS
//! threads while the commit thread retires blocks in logical-clock order.
//! Its contract is absolute: a parallel run is *byte-identical* to the
//! sequential reference at every worker count — same cycles, same counts,
//! same VM/sharing/FastTrack statistics, same races, and the same serialized
//! JSON. These tests prove that contract for all six benchmarks the repo's
//! suites exercise, at 1/2/4/8 workers, in every execution mode, plus a
//! property test over randomly drawn workload spec corners.

use aikido::{Mode, RunReport, Simulator, Workload, WorkloadSpec};
use proptest::prelude::*;

/// The six PARSEC presets the repo's test suites run end to end, spanning
/// the paper's sharing spectrum from raytrace (lowest) to fluidanimate
/// (highest).
const BENCHMARKS: [&str; 6] = [
    "raytrace",
    "blackscholes",
    "vips",
    "fluidanimate",
    "swaptions",
    "canneal",
];

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run(workload: &Workload, mode: Mode, workers: usize) -> RunReport {
    Simulator::default()
        .with_workers(workers)
        .run(workload, mode)
}

/// Field-for-field and serialized-byte equality in one assertion.
fn assert_byte_identical(seq: &RunReport, par: &RunReport, context: &str) {
    assert_eq!(par, seq, "report mismatch ({context})");
    let seq_json = serde_json::to_string(seq).expect("report serializes");
    let par_json = serde_json::to_string(par).expect("report serializes");
    assert_eq!(par_json, seq_json, "serialized bytes differ ({context})");
}

#[test]
fn all_six_benchmarks_are_byte_identical_at_every_worker_count() {
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("benchmark list contains only PARSEC presets")
            .scaled(0.02);
        let workload = Workload::generate(&spec);
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let seq = run(&workload, mode, 1);
            for workers in WORKER_COUNTS {
                let par = run(&workload, mode, workers);
                assert_byte_identical(&seq, &par, &format!("{name}, {mode:?}, {workers} workers"));
            }
        }
    }
}

#[test]
fn worker_counts_beyond_guest_threads_stay_identical() {
    // More workers than guest threads exercises the pool's clamp (idle
    // workers must not perturb lane assignment).
    let spec = WorkloadSpec::parsec("vips")
        .unwrap()
        .scaled(0.02)
        .with_threads(2);
    let workload = Workload::generate(&spec);
    let seq = run(&workload, Mode::Aikido, 1);
    for workers in [3, 16, 64] {
        let par = run(&workload, Mode::Aikido, workers);
        assert_byte_identical(&seq, &par, &format!("2 threads, {workers} workers"));
    }
}

#[test]
fn racy_and_barrier_heavy_workloads_stay_identical() {
    // Races and barrier cadence are the most schedule-sensitive outputs;
    // drive them explicitly through the parallel path.
    use aikido::workloads::{producer_consumer_workload, racy_workload};
    for spec in [racy_workload(4), producer_consumer_workload(4).scaled(0.5)] {
        let workload = Workload::generate(&spec);
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let seq = run(&workload, mode, 1);
            for workers in WORKER_COUNTS {
                let par = run(&workload, mode, workers);
                assert_byte_identical(&seq, &par, &format!("{}, {mode:?}", spec.name));
            }
        }
    }
}

#[test]
fn spill_pressure_workloads_stay_identical_across_the_lane_boundary() {
    // The packed plane's adversarial scenario (alternating-thread shared
    // reads, maximal spill traffic) at thread counts inside, exactly at,
    // and one past the spill slot's inline-lane budget — the parallel
    // scheduler must not perturb the ownership-hint churn.
    use aikido::workloads::spill_pressure_workload;
    for threads in [4, 8, 9] {
        let workload = Workload::generate(&spill_pressure_workload(threads));
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let seq = run(&workload, mode, 1);
            for workers in WORKER_COUNTS {
                let par = run(&workload, mode, workers);
                assert_byte_identical(
                    &seq,
                    &par,
                    &format!("spill_pressure x{threads}, {mode:?}, {workers} workers"),
                );
            }
        }
    }
}

#[test]
fn sharded_analysis_matches_the_commit_thread_oracle_at_every_worker_count() {
    // PR 10 moves analysis onto the worker shards; the `sharded_analysis`
    // toggle retains the commit-thread-only path as the equivalence
    // oracle. Both paths, at every parallel worker count, must match the
    // sequential reference byte for byte — including the spill-pressure
    // workloads at thread counts inside, at, and past the inline-lane
    // budget, where shard-local packed-plane state is under the most
    // churn.
    use aikido::workloads::spill_pressure_workload;
    let mut workloads = vec![
        (
            "fluidanimate".to_string(),
            Workload::generate(&WorkloadSpec::parsec("fluidanimate").unwrap().scaled(0.02)),
        ),
        (
            "canneal".to_string(),
            Workload::generate(&WorkloadSpec::parsec("canneal").unwrap().scaled(0.02)),
        ),
    ];
    for threads in [4, 8, 9] {
        workloads.push((
            format!("spill_pressure x{threads}"),
            Workload::generate(&spill_pressure_workload(threads)),
        ));
    }
    for (name, workload) in &workloads {
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let seq = run(workload, mode, 1);
            for workers in [2, 4, 8] {
                let sharded = Simulator::default()
                    .with_workers(workers)
                    .with_sharded_analysis(true)
                    .run(workload, mode);
                assert_byte_identical(
                    &seq,
                    &sharded,
                    &format!("{name}, {mode:?}, {workers} workers, sharded"),
                );
                let oracle = Simulator::default()
                    .with_workers(workers)
                    .with_sharded_analysis(false)
                    .run(workload, mode);
                assert_byte_identical(
                    &seq,
                    &oracle,
                    &format!("{name}, {mode:?}, {workers} workers, commit-thread oracle"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomly drawn spec corners (thread counts, sharing mix, barriers,
    /// critical sections, racy pairs) stay byte-identical under a parallel
    /// scheduler whose worker count does not divide the thread count.
    #[test]
    fn random_specs_are_parallel_equivalent(
        threads in 2u32..6,
        accesses in 500u64..3_000,
        instr_frac in 0.05f64..0.6,
        locked_frac in 0.0f64..0.8,
        barrier_every in prop::sample::select(vec![0u64, 16, 40]),
        racy_pairs in 0u32..2,
        workers in 2usize..6,
    ) {
        let spec = WorkloadSpec {
            threads,
            mem_accesses_per_thread: accesses,
            instrumented_exec_fraction: instr_frac,
            locked_shared_fraction: locked_frac,
            barrier_every,
            racy_pairs,
            ..WorkloadSpec::default()
        };
        let workload = Workload::generate(&spec);
        let seq = run(&workload, Mode::Aikido, 1);
        let par = run(&workload, Mode::Aikido, workers);
        prop_assert_eq!(&par, &seq);
        let seq_json = serde_json::to_string(&seq).expect("report serializes");
        let par_json = serde_json::to_string(&par).expect("report serializes");
        prop_assert_eq!(par_json, seq_json);
    }
}

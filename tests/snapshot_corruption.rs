//! Property-based corruption testing of the snapshot plane (PR 7): flip a
//! bit at a *random* offset, or truncate at a *random* length, and restore
//! must return a structured `SnapshotError` — never panic, and never
//! silently diverge from the pinned uninterrupted report.
//!
//! The deterministic sweep in `snapshot_faults.rs` covers every fault family
//! at fixed strides; this suite samples the offset space randomly so the
//! detection claim does not quietly depend on stride-aligned corruption.

use std::sync::OnceLock;

use aikido::{CheckpointOutcome, Mode, RunReport, Simulator, Snapshot, Workload, WorkloadSpec};
use proptest::prelude::*;

/// One shared fixture: the workload, its uninterrupted Aikido report (the
/// pin), and a valid midpoint checkpoint image. Built once — the proptest
/// cases only mutate copies of the image.
struct Fixture {
    workload: Workload,
    uninterrupted: RunReport,
    image: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let spec = WorkloadSpec::parsec("fluidanimate")
            .expect("known PARSEC preset")
            .scaled(0.02)
            .with_threads(4);
        let workload = Workload::generate(&spec);
        let sim = Simulator::default();
        let uninterrupted = sim.run(&workload, Mode::Aikido);
        let midpoint = uninterrupted.counts.block_execs / 2;
        let image = match sim
            .checkpoint(&workload, Mode::Aikido, midpoint)
            .expect("checkpoint")
        {
            CheckpointOutcome::Paused(snapshot) => snapshot.into_bytes(),
            CheckpointOutcome::Completed(_) => panic!("midpoint checkpoint must pause"),
        };
        Fixture {
            workload,
            uninterrupted,
            image,
        }
    })
}

/// The only acceptable outcomes for a tampered image: a structural rejection
/// at parse time or a structured error from the resume. Returns the error
/// description for the assertion message.
fn restore_outcome(bytes: Vec<u8>) -> Result<RunReport, String> {
    let fx = fixture();
    let snapshot = Snapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
    Simulator::default()
        .resume(&fx.workload, &snapshot)
        .map_err(|e| e.to_string())
}

#[test]
fn the_untampered_image_restores_to_the_pinned_report() {
    let fx = fixture();
    let resumed = restore_outcome(fx.image.clone()).expect("clean image restores");
    assert_eq!(resumed, fx.uninterrupted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single bit flip, anywhere in the image, must be detected: every
    /// byte of every section is under an FNV-1a checksum and the container
    /// header is validated field by field.
    #[test]
    fn a_random_bit_flip_is_always_detected(offset in 0usize..1_000_000, bit in 0u8..8) {
        let fx = fixture();
        let mut bytes = fx.image.clone();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let outcome = restore_outcome(bytes);
        prop_assert!(
            outcome.is_err(),
            "flip at byte {at} bit {bit} of {} was not detected",
            fx.image.len()
        );
    }

    /// Any strict-prefix truncation must be detected: a section length (or
    /// the container header itself) no longer fits the image.
    #[test]
    fn a_random_truncation_is_always_detected(len in 0usize..1_000_000) {
        let fx = fixture();
        let keep = len % fx.image.len();
        let outcome = restore_outcome(fx.image[..keep].to_vec());
        prop_assert!(
            outcome.is_err(),
            "truncation to {keep} of {} bytes was not detected",
            fx.image.len()
        );
    }

    /// Flipping a bit and then asking for the *full* pipeline (parse plus
    /// resume) must never reproduce the pinned report: detection, not
    /// accidental equality, is the only path to a passing restore.
    #[test]
    fn a_tampered_image_never_reproduces_the_pinned_report(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let fx = fixture();
        let mut bytes = fx.image.clone();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        match restore_outcome(bytes) {
            Err(message) => prop_assert!(!message.is_empty()),
            Ok(report) => prop_assert!(
                false,
                "tampered image restored silently to {:?}",
                report.counts
            ),
        }
    }
}

//! Property-based integration tests: arbitrary (small) workload
//! specifications must simulate cleanly in every mode, deterministically, and
//! without Aikido inventing races the full tool does not see.

use aikido::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        2u32..5,                                  // threads
        800u64..3_000,                            // accesses per thread
        0.0f64..0.8,                              // instrumented fraction
        0.2f64..1.0,                              // shared-within fraction
        0.2f64..0.95,                             // read fraction
        0.0f64..1.0,                              // locked fraction
        0u32..3,                                  // racy pairs
        prop::sample::select(vec![0u64, 16, 40]), // barrier cadence
        any::<u64>(),                             // seed
    )
        .prop_map(
            |(threads, accesses, instr, shared_within, reads, locked, racy, barrier, seed)| {
                WorkloadSpec {
                    name: "prop".to_string(),
                    threads,
                    mem_accesses_per_thread: accesses,
                    instrumented_exec_fraction: instr,
                    shared_within_instrumented: shared_within,
                    read_fraction: reads,
                    compute_per_mem: 1.0,
                    shared_pages: 12,
                    private_pages_per_thread: 8,
                    locks: 4,
                    locked_shared_fraction: locked,
                    critical_section_blocks: 3,
                    racy_pairs: racy,
                    barrier_every: barrier,
                    shared_static_blocks: 8,
                    private_static_blocks: 12,
                    block_mem_instrs: 4,
                    seed,
                }
            },
        )
}

fn race_blocks(report: &RunReport) -> BTreeSet<u64> {
    report.races.iter().map(|r| r.addr.raw() / 8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated workload completes in every mode, with consistent
    /// counters, and the same access totals in all three modes.
    #[test]
    fn any_small_workload_simulates_cleanly(spec in arb_spec()) {
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        let native = system.run(&workload, Mode::Native);
        let full = system.run(&workload, Mode::FullInstrumentation);
        let aikido = system.run(&workload, Mode::Aikido);

        prop_assert_eq!(native.counts.mem_accesses, full.counts.mem_accesses);
        prop_assert_eq!(native.counts.mem_accesses, aikido.counts.mem_accesses);
        prop_assert!(aikido.counts.instrumented_accesses <= aikido.counts.mem_accesses);
        prop_assert!(aikido.counts.shared_accesses <= aikido.counts.instrumented_accesses);
        prop_assert!(native.cycles <= full.cycles);
        prop_assert!(native.cycles <= aikido.cycles);
    }

    /// Aikido never reports a racy block the fully instrumented tool does not
    /// report (no false positives added by the acceleration).
    #[test]
    fn aikido_races_are_a_subset_of_full_races(spec in arb_spec()) {
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        let full = race_blocks(&system.run(&workload, Mode::FullInstrumentation));
        let aikido = race_blocks(&system.run(&workload, Mode::Aikido));
        for block in &aikido {
            prop_assert!(full.contains(block), "aikido-only race at block {:#x}", block);
        }
    }

    /// Race-free specifications (no racy pairs) stay race-free under both
    /// tools — the workload generator's synchronisation discipline and the
    /// detectors agree.
    #[test]
    fn race_free_specs_produce_no_reports(mut spec in arb_spec()) {
        spec.racy_pairs = 0;
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        prop_assert_eq!(system.run(&workload, Mode::FullInstrumentation).race_count(), 0);
        prop_assert_eq!(system.run(&workload, Mode::Aikido).race_count(), 0);
    }

    /// Simulation is a pure function of the workload spec.
    #[test]
    fn simulation_is_deterministic(spec in arb_spec()) {
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        let a = system.run(&workload, Mode::Aikido);
        let b = system.run(&workload, Mode::Aikido);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.counts, b.counts);
    }
}

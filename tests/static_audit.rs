//! End-to-end audit of the static pre-analysis (PR 6).
//!
//! The static pass derives sharing proofs from the scenario model and the
//! layout geometry — never from the generator's trusted labels — so its
//! claims are audited three ways here:
//!
//! * **runtime oracle** — all six benchmarks run in all three modes with a
//!   [`StaticAudit`] wrapper around the FastTrack detector; no access from a
//!   claimed-private block may hit a shared page, and the wrapped run's
//!   report must stay byte-identical to the unwrapped one;
//! * **coverage** — on the four throughput benchmarks the pass must
//!   independently prove at least 95% of the generator-labeled private
//!   blocks (it currently proves 100%), and never claim a labeled-shared
//!   block;
//! * **determinism** — two analysis runs over the same spec serialise to
//!   identical bytes, and the derived plan leaves every report unchanged.
//!
//! The CI `static-audit` lane runs this file in release mode at
//! `AIKIDO_SCALE=0.05`.

use aikido::fasttrack::FastTrack;
use aikido::{Mode, Simulator, StaticAudit, StaticReport, Workload, WorkloadSpec};

/// The six PARSEC presets the repo's suites exercise end to end.
const BENCHMARKS: [&str; 6] = [
    "raytrace",
    "blackscholes",
    "vips",
    "fluidanimate",
    "swaptions",
    "canneal",
];

/// The four presets the throughput bench (and the coverage criterion) uses.
const THROUGHPUT_BENCHMARKS: [&str; 4] = ["raytrace", "blackscholes", "vips", "fluidanimate"];

/// Workload scale: `AIKIDO_SCALE` when set (the CI release lane runs 0.05),
/// a fast default otherwise.
fn scale() -> f64 {
    std::env::var("AIKIDO_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.02)
}

fn workload(name: &str) -> Workload {
    let spec = WorkloadSpec::parsec(name)
        .expect("benchmark list contains only PARSEC presets")
        .scaled(scale());
    Workload::generate(&spec)
}

#[test]
fn audited_runs_are_clean_and_byte_identical_on_all_six_benchmarks() {
    for name in BENCHMARKS {
        let w = workload(name);
        let report = StaticReport::for_workload(&w);
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let mut plain = FastTrack::new();
            let plain_report = Simulator::default().run_with_analysis(&w, mode, &mut plain);

            let mut audited = StaticAudit::new(FastTrack::new(), &report, w.layout());
            let audited_report = Simulator::default().run_with_analysis(&w, mode, &mut audited);

            audited.assert_clean();
            assert_eq!(
                audited_report, plain_report,
                "audit wrapper perturbed the run ({name}, {mode:?})"
            );
            let inner = audited.into_inner();
            assert_eq!(
                inner.races(),
                plain.races(),
                "audit wrapper perturbed the detector ({name}, {mode:?})"
            );
            assert_eq!(inner.stats(), plain.stats());
        }
    }
}

#[test]
fn static_pass_proves_at_least_95_percent_of_labeled_private_blocks() {
    for name in THROUGHPUT_BENCHMARKS {
        let w = workload(name);
        let report = StaticReport::for_workload(&w);
        let labeled = w.private_block_ids();
        let proven = labeled
            .iter()
            .filter(|&&b| report.is_proven_private(b))
            .count();
        assert!(
            proven as f64 >= 0.95 * labeled.len() as f64,
            "{name}: proved only {proven}/{} labeled-private blocks",
            labeled.len()
        );
        for &b in w.shared_block_ids() {
            assert!(
                !report.is_proven_private(b),
                "{name}: labeled-shared {b:?} claimed private"
            );
        }
    }
}

#[test]
fn derived_plan_leaves_reports_byte_identical() {
    for name in BENCHMARKS {
        let w = workload(name);
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let with_precheck = Simulator::default().run(&w, mode);
            let without = Simulator::default()
                .with_static_precheck(false)
                .run(&w, mode);
            assert_eq!(with_precheck, without, "{name}, {mode:?}");
        }
    }
}

#[test]
fn static_reports_are_deterministic_down_to_the_bytes() {
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name).unwrap().scaled(scale());
        let a = StaticReport::for_workload(&Workload::generate(&spec));
        let b = StaticReport::for_workload(&Workload::generate(&spec));
        assert_eq!(a, b, "{name}: reports differ structurally");
        assert_eq!(
            serde_json::to_string(&a).expect("report serializes"),
            serde_json::to_string(&b).expect("report serializes"),
            "{name}: reports differ in serialised bytes"
        );
    }
}

#[test]
fn adversarial_aliasing_claims_stay_sound_under_audit() {
    // Every shared block of the aliasing workload spends half its accesses
    // in private memory; the pass must still keep them out of the proven set
    // and the oracle confirms the claims it does make.
    let w = Workload::generate(&aikido::workloads::aliasing_stress_workload(4));
    let report = StaticReport::for_workload(&w);
    assert!(w
        .private_block_ids()
        .iter()
        .all(|&b| report.is_proven_private(b)));
    assert!(!w
        .shared_block_ids()
        .iter()
        .any(|&b| report.is_proven_private(b)));
    for mode in [Mode::FullInstrumentation, Mode::Aikido] {
        let mut audited = StaticAudit::new(FastTrack::new(), &report, w.layout());
        Simulator::default().run_with_analysis(&w, mode, &mut audited);
        audited.assert_clean();
    }
}

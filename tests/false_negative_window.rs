//! The §6 discussion: the only false negatives Aikido introduces are races
//! among the first two accesses to a page (the accesses that trigger the
//! Unused → Private → Shared transitions, which execute before the faulting
//! instructions are instrumented).

use aikido::prelude::*;
use aikido::workloads::{first_access_race_workload, racy_workload};
use std::collections::BTreeSet;

fn race_blocks(report: &RunReport) -> BTreeSet<u64> {
    report.races.iter().map(|r| r.addr.raw() / 8).collect()
}

#[test]
fn aikido_never_reports_races_the_full_tool_does_not() {
    for spec in [first_access_race_workload(2), racy_workload(4)] {
        let workload = Workload::generate(&spec);
        let system = AikidoSystem::new();
        let full = race_blocks(&system.run(&workload, Mode::FullInstrumentation));
        let aikido = race_blocks(&system.run(&workload, Mode::Aikido));
        for block in &aikido {
            assert!(
                full.contains(block),
                "{}: spurious aikido race at {block:#x}",
                spec.name
            );
        }
    }
}

#[test]
fn full_instrumentation_catches_the_first_access_race() {
    let workload = Workload::generate(&first_access_race_workload(2));
    let full = AikidoSystem::new().run(&workload, Mode::FullInstrumentation);
    assert!(
        full.race_count() > 0,
        "the adversarial workload must race under full instrumentation"
    );
}

#[test]
fn aikido_misses_at_most_the_first_access_window() {
    let workload = Workload::generate(&first_access_race_workload(2));
    let system = AikidoSystem::new();
    let full = system.run(&workload, Mode::FullInstrumentation);
    let aikido = system.run(&workload, Mode::Aikido);
    // Aikido may report fewer races (the documented window) but never more
    // distinct racy blocks than the sound tool.
    assert!(race_blocks(&aikido).len() <= race_blocks(&full).len());
}

#[test]
fn races_with_repeated_accesses_are_never_missed() {
    // Once the racing addresses are accessed repeatedly, the instructions are
    // instrumented and Aikido reports the races like the full tool.
    let mut spec = racy_workload(4);
    spec.mem_accesses_per_thread = 8_000;
    let workload = Workload::generate(&spec);
    let system = AikidoSystem::new();
    let full = race_blocks(&system.run(&workload, Mode::FullInstrumentation));
    let aikido = race_blocks(&system.run(&workload, Mode::Aikido));
    assert!(!full.is_empty());
    // Every block the full tool flags repeatedly is also flagged by Aikido.
    let missed = full.difference(&aikido).count();
    assert!(
        missed <= full.len() / 2,
        "aikido missed {missed} of {} racy blocks despite repeated accesses",
        full.len()
    );
}

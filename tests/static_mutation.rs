//! Mutation testing of the static pre-analysis audit oracle (PR 6).
//!
//! The honest pipeline never trips the oracle (see `static_audit.rs`), so
//! these tests prove the oracle actually *bites*: they record ground truth —
//! exactly which blocks touch the shared region, and how often — with a
//! purpose-built recording analysis, then inject deliberately unsound
//! "proven private" claims via [`StaticAudit::with_claims`] and require the
//! violation count to match the recorded access count **exactly**. An oracle
//! that misses even one delivery from one tampered block fails the
//! assertion, so every injection must be caught.
//!
//! Tampered claims go only into the audit wrapper, never into the engine's
//! instrumentation plan: the plan is advice about instrumentation *masks*,
//! the oracle is the soundness check, and conflating them would let an
//! unsound plan suppress the very deliveries the oracle needs to see.

use std::collections::BTreeMap;

use aikido::types::NullAnalysis;
use aikido::{
    AccessContext, AnalysisReport, Mode, SharedDataAnalysis, Simulator, StaticAudit, Workload,
    WorkloadSpec,
};
use proptest::prelude::*;

/// Records, per static block, how many delivered accesses landed in the
/// shared region — the ground truth the injected claims are scored against.
#[derive(Debug)]
struct RecordingAnalysis {
    shared_start: u64,
    shared_end: u64,
    shared_hits: BTreeMap<usize, u64>,
}

impl RecordingAnalysis {
    fn for_workload(w: &Workload) -> Self {
        let shared_start = w.layout().shared_base().raw();
        RecordingAnalysis {
            shared_start,
            shared_end: shared_start + w.layout().shared_bytes(),
            shared_hits: BTreeMap::new(),
        }
    }
}

impl SharedDataAnalysis for RecordingAnalysis {
    fn name(&self) -> &'static str {
        "mutation-ground-truth"
    }

    fn on_access(&mut self, cx: AccessContext) {
        let raw = cx.addr.raw();
        if raw >= self.shared_start && raw < self.shared_end {
            *self
                .shared_hits
                .entry(cx.instr.block().raw() as usize)
                .or_insert(0) += 1;
        }
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        Vec::new()
    }
}

fn small(name: &str) -> Workload {
    let spec = WorkloadSpec::parsec(name)
        .expect("known PARSEC preset")
        .scaled(0.02)
        .with_threads(4);
    Workload::generate(&spec)
}

/// Ground truth for `w` under `mode`: per-block shared-delivery counts.
fn ground_truth(w: &Workload, mode: Mode) -> BTreeMap<usize, u64> {
    let mut rec = RecordingAnalysis::for_workload(w);
    Simulator::default().run_with_analysis(w, mode, &mut rec);
    rec.shared_hits
}

/// Runs `w` under `mode` with `claims` injected into the audit oracle and
/// returns the violation count.
fn violations_with_claims(w: &Workload, mode: Mode, claims: Vec<bool>) -> u64 {
    let mut audited = StaticAudit::with_claims(NullAnalysis::new(), claims, w.layout());
    Simulator::default().run_with_analysis(w, mode, &mut audited);
    audited.violations()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Inject a pseudo-random non-empty subset of the blocks that provably
    /// touch shared memory; the oracle must flag *exactly* the recorded
    /// number of shared deliveries from those blocks — no more, no less.
    #[test]
    fn every_injected_unsound_claim_is_caught(
        name in prop::sample::select(vec![
            "raytrace", "blackscholes", "vips", "fluidanimate", "swaptions", "canneal",
        ]),
        mask in 1u64..u64::MAX,
    ) {
        let w = small(name);
        let truth = ground_truth(&w, Mode::FullInstrumentation);
        prop_assert!(!truth.is_empty(), "{name}: no shared deliveries recorded");

        // Choose the subset by masking the sorted sharing blocks; force the
        // first one in if the mask happens to select none.
        let sharing: Vec<usize> = truth.keys().copied().collect();
        let mut injected: Vec<usize> = sharing
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, b)| *b)
            .collect();
        if injected.is_empty() {
            injected.push(sharing[0]);
        }

        let mut claims = vec![false; sharing.iter().max().unwrap() + 1];
        for &b in &injected {
            claims[b] = true;
        }
        let expected: u64 = injected.iter().map(|b| truth[b]).sum();
        prop_assert!(expected > 0);

        let caught = violations_with_claims(&w, Mode::FullInstrumentation, claims);
        prop_assert_eq!(
            caught, expected,
            "{}: oracle caught {} of {} tampered deliveries", name, caught, expected
        );
    }
}

#[test]
fn injecting_every_labeled_shared_block_is_fully_caught_in_full_mode() {
    for name in ["raytrace", "canneal"] {
        let w = small(name);
        let truth = ground_truth(&w, Mode::FullInstrumentation);
        let max_block = w
            .shared_block_ids()
            .iter()
            .map(|b| b.raw() as usize)
            .max()
            .expect("benchmarks have shared blocks");
        let mut claims = vec![false; max_block + 1];
        for b in w.shared_block_ids() {
            claims[b.raw() as usize] = true;
        }
        let expected: u64 = w
            .shared_block_ids()
            .iter()
            .filter_map(|b| truth.get(&(b.raw() as usize)))
            .sum();
        assert!(expected > 0, "{name}: shared blocks never delivered");
        let caught = violations_with_claims(&w, Mode::FullInstrumentation, claims);
        assert_eq!(caught, expected, "{name}");
    }
}

#[test]
fn aikido_mode_deliveries_are_audited_with_the_same_exactness() {
    // Aikido delivers only shared-page accesses, so the recorded counts are
    // a subset of Full mode's — the oracle must still match them exactly.
    for name in ["raytrace", "canneal"] {
        let w = small(name);
        let truth = ground_truth(&w, Mode::Aikido);
        assert!(!truth.is_empty(), "{name}: Aikido delivered nothing shared");
        let max_block = *truth.keys().max().unwrap();
        let mut claims = vec![false; max_block + 1];
        for &b in truth.keys() {
            claims[b] = true;
        }
        let expected: u64 = truth.values().sum();
        let caught = violations_with_claims(&w, Mode::Aikido, claims);
        assert_eq!(caught, expected, "{name}");
    }
}

#[test]
fn unclaimed_blocks_never_trip_the_oracle() {
    let w = small("canneal");
    assert_eq!(
        violations_with_claims(&w, Mode::FullInstrumentation, Vec::new()),
        0,
        "empty claim vector must audit clean"
    );
}

//! Table 2 / Figure 6 invariants, checked for every PARSEC preset at a small
//! scale: the statistics the paper reports must be internally consistent and
//! the sharing fractions must match the calibration targets.

use aikido::prelude::*;
use aikido::PARSEC_BENCHMARKS;

fn aikido_report(name: &str) -> (WorkloadSpec, RunReport) {
    let spec = WorkloadSpec::parsec(name).unwrap().scaled(0.05);
    let workload = Workload::generate(&spec);
    (spec, AikidoSystem::new().run(&workload, Mode::Aikido))
}

#[test]
fn instrumented_accesses_never_exceed_total_accesses() {
    for name in PARSEC_BENCHMARKS {
        let (_, report) = aikido_report(name);
        let c = report.counts;
        assert!(c.instrumented_accesses <= c.mem_accesses, "{name}");
        assert!(c.shared_accesses <= c.instrumented_accesses, "{name}");
    }
}

#[test]
fn shared_access_fraction_matches_the_calibrated_figure6_value() {
    for name in PARSEC_BENCHMARKS {
        let (spec, report) = aikido_report(name);
        let measured = report.counts.shared_access_fraction();
        let expected = spec.expected_shared_access_fraction();
        assert!(
            (measured - expected).abs() < 0.08,
            "{name}: measured {measured:.3}, calibrated {expected:.3}"
        );
    }
}

#[test]
fn every_benchmark_takes_some_faults_but_orders_of_magnitude_fewer_than_accesses() {
    for name in PARSEC_BENCHMARKS {
        let (_, report) = aikido_report(name);
        let c = report.counts;
        assert!(c.segfaults > 0, "{name}: sharing detection cannot be free");
        // At this reduced test scale the one-off per-page faults are less well
        // amortised than at the full benchmark scale (where the table2 harness
        // measures well under 0.5%), so the bound here is intentionally loose.
        assert!(
            (c.segfaults as f64) < (c.mem_accesses as f64) * 0.15,
            "{name}: {} faults for {} accesses",
            c.segfaults,
            c.mem_accesses
        );
    }
}

#[test]
fn sharing_detector_statistics_are_consistent() {
    for name in PARSEC_BENCHMARKS {
        let (_, report) = aikido_report(name);
        let s = report.sharing;
        assert_eq!(
            s.faults_handled,
            s.private_transitions + s.shared_transitions + s.shared_page_faults + s.spurious_faults,
            "{name}: fault dispositions must partition the handled faults"
        );
        // Every shared page was privately owned by someone first.
        assert!(s.shared_transitions <= s.private_transitions, "{name}");
        assert_eq!(
            report.vm.aikido_faults_delivered, s.faults_handled,
            "{name}"
        );
    }
}

#[test]
fn raytrace_has_the_least_sharing_and_freqmine_among_the_most() {
    let fraction = |name: &str| aikido_report(name).1.counts.shared_access_fraction();
    let raytrace = fraction("raytrace");
    let freqmine = fraction("freqmine");
    let blackscholes = fraction("blackscholes");
    assert!(raytrace < 0.01);
    assert!(raytrace < blackscholes);
    assert!(blackscholes < freqmine);
    assert!(freqmine > 0.4);
}

#[test]
fn aikido_reduces_instrumentation_by_a_large_factor_on_average() {
    // Paper: geometric mean 6.75x reduction in instructions needing
    // instrumentation. At test scale we only require the reduction to be
    // substantial (> 2x) and present for every benchmark with low sharing.
    let mut product = 1.0_f64;
    let mut count = 0u32;
    for name in PARSEC_BENCHMARKS {
        let (_, report) = aikido_report(name);
        let c = report.counts;
        let reduction = c.mem_accesses as f64 / c.instrumented_accesses.max(1) as f64;
        assert!(reduction >= 1.0, "{name}");
        product *= reduction;
        count += 1;
    }
    let geomean = product.powf(1.0 / count as f64);
    assert!(
        geomean > 2.0,
        "geometric-mean reduction {geomean:.2}x is too small"
    );
}
